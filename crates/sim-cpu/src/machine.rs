//! The multi-core machine: N out-of-order cores sharing one uncore.
//!
//! A [`Machine`] interleaves per-core ticks in lockstep — every cycle each
//! non-halted core steps once, in a rotating order so no core gets a
//! standing first-access advantage on the shared L1↔L2 crossbar — and then
//! drains the uncore's snoop queue, back-invalidating lines that left the
//! shared L2 (or were requested exclusively) from the *other* cores'
//! private L1s. Cores keep their private L1 caches and their own
//! functional memory (architectural isolation), while all timing state
//! below L1 — the shared L2, both crossbars and the DRAM controller — is
//! one [`Uncore`] behind a mutex that is never contended (cores tick
//! sequentially; the lock exists so corpus collection can move machines
//! across threads).
//!
//! Tick-skipping stays correct across cores: the machine fast-forwards
//! only when *every* active core proves all of its stages stalled
//! (`Core::stall_plan`), jumping everyone to the earliest wake event and
//! crediting each core the exact per-cycle stall statistics the stepped
//! loop would have recorded. One busy core vetoes the skip for the whole
//! machine.
//!
//! A single-core machine is bit-identical to a standalone [`Core`]: the
//! shared uncore arms no snooping or arbiter accounting for one core, the
//! statistic walk emits the historical flat layout (1159 names), and the
//! run loop degenerates to exactly the standalone loop. Multi-core
//! machines namespace each core's statistics under `core0.`, `core1.`, …
//! while the shared uncore groups stay unprefixed.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use sim_mem::{HierarchyConfig, MemoryHierarchy, Uncore};
use uarch_isa::Program;
use uarch_stats::{SampleSink, Sampler, Schema, StatGroup, StatVisitor};

use crate::config::CoreConfig;
use crate::core::{Core, RunSummary};
use crate::error::SimError;
use crate::pipeline::join_prefix;

/// N out-of-order cores in lockstep around one shared uncore.
pub struct Machine {
    cores: Vec<Core>,
    uncore: Arc<Mutex<Uncore>>,
    cycle: u64,
}

impl Machine {
    /// Builds a machine with one core per program, every core running the
    /// same configuration, all sharing the uncore described by `hcfg`
    /// (each core still gets private L1s from `hcfg.l1i`/`hcfg.l1d`).
    ///
    /// Cores are architecturally isolated — each gets its own functional
    /// memory image of its program — but share all timing state below the
    /// L1s, so same addresses across cores model shared read-only pages
    /// (Flush+Reload territory) and same-set-different-tag addresses
    /// contend for shared L2 ways (cross-core Prime+Probe).
    ///
    /// # Errors
    ///
    /// Fails when `programs` is empty, the core configuration is invalid,
    /// or the hierarchy configuration is degenerate.
    pub fn try_new(
        cfg: &CoreConfig,
        hcfg: &HierarchyConfig,
        programs: Vec<Program>,
    ) -> Result<Self, SimError> {
        if programs.is_empty() {
            return Err(SimError::InvalidConfig {
                param: "n_cores",
                value: 0,
                reason: "a machine needs at least one core",
            });
        }
        let n = programs.len();
        let uncore = Arc::new(Mutex::new(Uncore::try_new(hcfg, n).map_err(SimError::Mem)?));
        let mut cores = Vec::with_capacity(n);
        for (i, program) in programs.into_iter().enumerate() {
            let mem = MemoryHierarchy::try_shared(
                hcfg.l1i.clone(),
                hcfg.l1d.clone(),
                Arc::clone(&uncore),
                i,
            )
            .map_err(SimError::Mem)?;
            cores.push(Core::try_with_parts(cfg.clone(), program, mem)?);
        }
        Ok(Self {
            cores,
            uncore,
            cycle: 0,
        })
    }

    /// Builds a machine, panicking on configuration errors.
    ///
    /// # Panics
    ///
    /// Panics if [`Machine::try_new`] would return an error.
    pub fn new(cfg: &CoreConfig, hcfg: &HierarchyConfig, programs: Vec<Program>) -> Self {
        Self::try_new(cfg, hcfg, programs).expect("valid machine configuration")
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// The cores, in id order.
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// Core `i`.
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// Mutable access to core `i` (per-core noise seeding, register
    /// probes).
    pub fn core_mut(&mut self, i: usize) -> &mut Core {
        &mut self.cores[i]
    }

    /// Machine cycles simulated so far (all active cores tick in
    /// lockstep at this cycle count; a halted core's clock freezes).
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Instructions committed across all cores.
    pub fn total_committed(&self) -> u64 {
        self.cores.iter().map(Core::committed_insts).sum()
    }

    /// Whether every core's program has halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(Core::halted)
    }

    /// Runs `f` with shared access to the uncore (L2/bus/DRAM probes).
    pub fn with_uncore<R>(&self, f: impl FnOnce(&Uncore) -> R) -> R {
        f(&self.uncore.lock().expect("uncore lock poisoned"))
    }

    /// Resolves the machine's full statistic schema without sampling: the
    /// flat single-core layout for one core, `coreN.`-namespaced per-core
    /// banks plus unprefixed shared-uncore groups otherwise.
    pub fn stat_schema(&self) -> Schema {
        Schema::of(self, "")
    }

    /// The tightest cycle budget configured on any core (the machine
    /// watchdog: one runaway core must not hang collection).
    fn cycle_budget(&self) -> Option<u64> {
        self.cores
            .iter()
            .filter_map(|c| c.config().cycle_budget)
            .min()
    }

    /// Whether the fast path may skip stalled cycles: every core must opt
    /// in (reference scans step everything).
    fn tick_skip(&self) -> bool {
        self.cores
            .iter()
            .all(|c| c.config().tick_skip && !c.config().reference_scan)
    }

    /// Runs until every program halts or `max_insts` more instructions
    /// commit machine-wide. Mirrors [`Core::run`], including the cycle cap
    /// and the tick-skip fast path; with one core the loop is exactly the
    /// standalone loop.
    pub fn run(&mut self, max_insts: u64) -> RunSummary {
        let started = Instant::now();
        let committed_before = self.total_committed();
        let cycles_before = self.cycle;
        let target = committed_before.saturating_add(max_insts);
        let mut cycle_cap = self.cycle + max_insts.saturating_mul(40) + 2_000_000;
        if let Some(budget) = self.cycle_budget() {
            cycle_cap = cycle_cap.min(budget);
        }
        let skip = self.tick_skip();
        let n = self.cores.len();
        while !self.all_halted() && self.total_committed() < target && self.cycle < cycle_cap {
            if skip {
                self.skip_stalled(cycle_cap);
                if self.cycle >= cycle_cap {
                    break;
                }
            }
            // Rotate the tick order so bus arbitration ties don't always
            // fall to core 0.
            for k in 0..n {
                let i = (self.cycle as usize + k) % n;
                if !self.cores[i].halted() {
                    self.cores[i].step();
                }
            }
            if n > 1 {
                self.drain_snoops();
            }
            self.cycle += 1;
        }
        let secs = started.elapsed().as_secs_f64();
        let rate = |delta: u64| if secs > 0.0 { delta as f64 / secs } else { 0.0 };
        RunSummary {
            committed: self.total_committed(),
            cycles: self.cycle,
            halted: self.all_halted(),
            insts_per_sec: rate(self.total_committed() - committed_before),
            sim_cycles_per_sec: rate(self.cycle - cycles_before),
        }
    }

    /// Fast-forwards past cycles in which *every* active core is provably
    /// stalled. Any core that could make progress vetoes the whole skip;
    /// otherwise all active cores jump to the earliest wake event across
    /// the machine, each crediting its exact per-cycle stall statistics.
    fn skip_stalled(&mut self, cycle_cap: u64) {
        let mut plans = Vec::with_capacity(self.cores.len());
        for core in &mut self.cores {
            if core.halted() {
                plans.push(None);
                continue;
            }
            match core.stall_plan() {
                Some(plan) => plans.push(Some(plan)),
                None => return,
            }
        }
        let wake = plans
            .iter()
            .flatten()
            .map(|p| p.wake(cycle_cap))
            .min()
            .unwrap_or(cycle_cap);
        let skip_to = wake.min(cycle_cap);
        if skip_to <= self.cycle {
            return;
        }
        for (core, plan) in self.cores.iter_mut().zip(&plans) {
            if let Some(plan) = plan {
                core.credit_stall_cycles(plan, skip_to);
            }
        }
        self.cycle = skip_to;
    }

    /// Applies the uncore's queued back-invalidations to every core except
    /// the one whose request caused them, and records delivered snoops on
    /// the L1↔L2 crossbar's snoop filter. Runs after each lockstep tick
    /// round, so the queue never carries entries across a skip (stalled
    /// cores make no memory requests).
    fn drain_snoops(&mut self) {
        let pending = self
            .uncore
            .lock()
            .expect("uncore lock poisoned")
            .take_pending_invalidations();
        if pending.is_empty() {
            return;
        }
        let mut delivered = 0u64;
        for inv in &pending {
            for (i, core) in self.cores.iter_mut().enumerate() {
                if i == inv.src_core {
                    continue;
                }
                delivered += core.mem_mut().snoop_invalidate(inv.line_addr);
            }
        }
        if delivered > 0 {
            self.uncore
                .lock()
                .expect("uncore lock poisoned")
                .record_snoops(delivered);
        }
    }

    /// Runs until every program halts or `insts` instructions commit
    /// machine-wide, emitting one stat-delta row to `sink` every
    /// `interval` *machine-wide* committed instructions — the multi-core
    /// analog of [`Core::run_with_sink`], with sampling boundaries on the
    /// aggregate commit count so attacker and victim progress both advance
    /// the window.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZeroSampleInterval`] when `interval` is zero,
    /// and [`SimError::CycleBudgetExceeded`] when the tightest configured
    /// per-core cycle budget runs out before the run halts or reaches its
    /// instruction target.
    pub fn run_with_sink(
        &mut self,
        insts: u64,
        interval: u64,
        sink: &mut dyn SampleSink,
    ) -> Result<RunSummary, SimError> {
        if interval == 0 {
            return Err(SimError::ZeroSampleInterval);
        }
        let started = Instant::now();
        let committed_before = self.total_committed();
        let cycles_before = self.cycle;
        let mut sampler = Sampler::new(&*self, "");
        let mut next = interval;
        let mut summary = RunSummary {
            committed: self.total_committed(),
            cycles: self.cycle,
            halted: self.all_halted(),
            insts_per_sec: 0.0,
            sim_cycles_per_sec: 0.0,
        };
        let mut cut_short = false;
        while next <= insts {
            summary = self.run(next - self.total_committed());
            if self.all_halted() || self.total_committed() < next {
                // Programs ended, stalled, or hit the watchdog.
                cut_short = !self.all_halted();
                break;
            }
            sampler.sample_into(&*self, self.total_committed(), sink);
            next += interval;
        }
        if let Some(budget) = self.cycle_budget() {
            if cut_short && self.cycle >= budget {
                return Err(SimError::CycleBudgetExceeded {
                    budget,
                    cycles: self.cycle,
                    committed: self.total_committed(),
                });
            }
        }
        // Per-chunk rates from the inner `run` calls exclude sampling
        // overhead; report whole-call throughput instead.
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 {
            summary.insts_per_sec = (self.total_committed() - committed_before) as f64 / secs;
            summary.sim_cycles_per_sec = (self.cycle - cycles_before) as f64 / secs;
        }
        Ok(summary)
    }
}

impl StatGroup for Machine {
    fn visit(&self, prefix: &str, v: &mut dyn StatVisitor) {
        if self.cores.len() == 1 {
            // Standalone layout: the core's flat groups (which, with a
            // shared hierarchy, end at the private L1s) followed by the
            // uncore groups in their historical positions — exactly the
            // pinned 1159-name census.
            self.cores[0].visit(prefix, v);
        } else {
            for (i, core) in self.cores.iter().enumerate() {
                core.visit(&join_prefix(prefix, &format!("core{i}")), v);
            }
        }
        self.uncore
            .lock()
            .expect("uncore lock poisoned")
            .visit_stats(prefix, v);
    }
}
