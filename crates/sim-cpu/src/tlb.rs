//! A small fully-associative TLB model (timing only; translation is
//! identity in this machine).

use std::collections::VecDeque;

/// A FIFO-replacement TLB caching page translations.
///
/// The simulated machine uses identity mapping, so the TLB's only job is
/// producing realistic `dtb.rdMisses`-style statistics and miss latencies
/// for workloads that sweep many pages (Prime+Probe does; tight Spectre
/// loops do not).
#[derive(Debug)]
pub struct Tlb {
    entries: VecDeque<u64>,
    capacity: usize,
    miss_latency: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` page entries and the given miss
    /// penalty (page-walk cycles).
    pub fn new(capacity: usize, miss_latency: u64) -> Self {
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            miss_latency,
        }
    }

    /// Translates the page containing `addr`; returns the added latency
    /// (zero on hit) and whether it missed.
    pub fn access(&mut self, addr: u64) -> (u64, bool) {
        let page = addr >> 12;
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            // Move to the back (most recent).
            let p = self.entries.remove(pos).expect("position valid");
            self.entries.push_back(p);
            (0, false)
        } else {
            if self.entries.len() == self.capacity {
                self.entries.pop_front();
            }
            self.entries.push_back(page);
            (self.miss_latency, true)
        }
    }

    /// Number of cached translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no translation is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_second_hits() {
        let mut t = Tlb::new(4, 20);
        assert_eq!(t.access(0x1234), (20, true));
        assert_eq!(t.access(0x1fff), (0, false)); // same page
        assert_eq!(t.access(0x2000), (20, true)); // next page
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut t = Tlb::new(2, 20);
        t.access(0x1000);
        t.access(0x2000);
        t.access(0x1000); // refresh page 1
        t.access(0x3000); // evicts page 2
        assert!(!t.access(0x1000).1);
        assert!(t.access(0x2000).1);
    }
}
