//! Branch prediction: tournament direction predictor, branch target buffer,
//! return address stack.
//!
//! Speculative state (global history, RAS top) is checkpointed per branch
//! and restored on squash, so mistraining the structures — the heart of the
//! Spectre family — behaves like real hardware.

/// Saved predictor state for one in-flight control instruction, restored on
/// squash.
#[derive(Debug, Clone, Copy, Default)]
pub struct PredCheckpoint {
    /// Global history register before this branch's speculative update.
    pub ghr: u64,
    /// RAS top-of-stack index before this instruction.
    pub ras_tos: usize,
    /// RAS entry value that `ras_tos` pointed at.
    pub ras_top: usize,
    /// Index into the local predictor used.
    pub local_idx: usize,
    /// Index into the global predictor used.
    pub global_idx: usize,
    /// Index into the choice predictor used.
    pub choice_idx: usize,
    /// Whether the chooser selected the global component.
    pub used_global: bool,
}

/// Tournament (local/global/chooser) conditional branch direction predictor.
#[derive(Debug)]
pub struct TournamentPredictor {
    local_hist: Vec<u16>,
    local_ctrs: Vec<u8>,
    global_ctrs: Vec<u8>,
    choice_ctrs: Vec<u8>,
    ghr: u64,
    local_hist_bits: u32,
}

impl TournamentPredictor {
    /// Creates a predictor with the given table sizes (each rounded to a
    /// power of two by the caller's choice of sizes).
    pub fn new(local_size: usize, global_size: usize, choice_size: usize) -> Self {
        Self {
            local_hist: vec![0; local_size],
            local_ctrs: vec![3; local_size], // 3-bit, weakly not-taken
            global_ctrs: vec![1; global_size],
            choice_ctrs: vec![1; choice_size],
            ghr: 0,
            local_hist_bits: (local_size.trailing_zeros()).min(10),
        }
    }

    /// Current global history register (checkpointed by callers).
    pub fn ghr(&self) -> u64 {
        self.ghr
    }

    /// Restores the global history register after a squash.
    pub fn restore_ghr(&mut self, ghr: u64) {
        self.ghr = ghr;
    }

    /// Predicts the direction of the conditional branch at `pc`, updating
    /// speculative history. Returns the prediction and the checkpoint the
    /// core stores with the instruction.
    pub fn predict(&mut self, pc: usize) -> (bool, PredCheckpoint) {
        let lsize = self.local_hist.len();
        let lh_idx = pc % lsize;
        let hist = (self.local_hist[lh_idx] as usize) & (lsize - 1);
        let local_idx = hist % self.local_ctrs.len();
        let local_taken = self.local_ctrs[local_idx] >= 4;

        let gsize = self.global_ctrs.len();
        let global_idx = ((self.ghr as usize) ^ pc) & (gsize - 1);
        let global_taken = self.global_ctrs[global_idx] >= 2;

        let csize = self.choice_ctrs.len();
        let choice_idx = (self.ghr as usize) & (csize - 1);
        let used_global = self.choice_ctrs[choice_idx] >= 2;

        let taken = if used_global {
            global_taken
        } else {
            local_taken
        };
        let cp = PredCheckpoint {
            ghr: self.ghr,
            ras_tos: 0,
            ras_top: 0,
            local_idx,
            global_idx,
            choice_idx,
            used_global,
        };
        // Speculatively update the global history.
        self.ghr = (self.ghr << 1) | taken as u64;
        (taken, cp)
    }

    /// Trains the tables with the resolved outcome.
    pub fn update(&mut self, pc: usize, taken: bool, predicted: bool, cp: &PredCheckpoint) {
        let local_correct = (self.local_ctrs[cp.local_idx] >= 4) == taken;
        let global_correct = (self.global_ctrs[cp.global_idx] >= 2) == taken;

        // Chooser trains toward whichever component was right.
        if local_correct != global_correct {
            let c = &mut self.choice_ctrs[cp.choice_idx];
            if global_correct {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }

        let lc = &mut self.local_ctrs[cp.local_idx];
        if taken {
            *lc = (*lc + 1).min(7);
        } else {
            *lc = lc.saturating_sub(1);
        }
        let gc = &mut self.global_ctrs[cp.global_idx];
        if taken {
            *gc = (*gc + 1).min(3);
        } else {
            *gc = gc.saturating_sub(1);
        }

        // Update the local history with the true outcome.
        let lsize = self.local_hist.len();
        let lh_idx = pc % lsize;
        let mask = (1u16 << self.local_hist_bits) - 1;
        self.local_hist[lh_idx] = ((self.local_hist[lh_idx] << 1) | taken as u16) & mask;

        // Repair the speculative global history if the prediction was wrong:
        // the checkpointed value has the pre-branch history.
        if predicted != taken {
            self.ghr = (cp.ghr << 1) | taken as u64;
        }
    }
}

/// Direct-mapped branch target buffer.
#[derive(Debug)]
pub struct Btb {
    entries: Vec<Option<(usize, usize)>>, // (pc tag, target)
}

impl Btb {
    /// Creates a BTB with `size` entries.
    pub fn new(size: usize) -> Self {
        Self {
            entries: vec![None; size],
        }
    }

    /// Looks up the predicted target for `pc`.
    pub fn lookup(&self, pc: usize) -> Option<usize> {
        match self.entries[pc % self.entries.len()] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Installs or updates the target for `pc`.
    pub fn update(&mut self, pc: usize, target: usize) {
        let len = self.entries.len();
        self.entries[pc % len] = Some((pc, target));
    }
}

/// Fixed-depth return address stack with squash restore.
#[derive(Debug)]
pub struct Ras {
    stack: Vec<usize>,
    tos: usize,
}

impl Ras {
    /// Creates a RAS with `entries` slots.
    pub fn new(entries: usize) -> Self {
        Self {
            stack: vec![0; entries],
            tos: 0,
        }
    }

    /// Current top-of-stack index and value (for checkpoints).
    pub fn checkpoint(&self) -> (usize, usize) {
        (self.tos, self.stack[self.tos])
    }

    /// Restores a checkpoint taken before a squashed instruction.
    pub fn restore(&mut self, tos: usize, top: usize) {
        self.tos = tos;
        self.stack[self.tos] = top;
    }

    /// Pushes a return address (wrapping like real hardware, overwriting the
    /// oldest entry when full — the behavior SpectreRSB exploits).
    pub fn push(&mut self, ret_addr: usize) {
        self.tos = (self.tos + 1) % self.stack.len();
        self.stack[self.tos] = ret_addr;
    }

    /// Pops the predicted return address.
    pub fn pop(&mut self) -> usize {
        let v = self.stack[self.tos];
        self.tos = (self.tos + self.stack.len() - 1) % self.stack.len();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tournament_learns_always_taken() {
        let mut p = TournamentPredictor::new(256, 1024, 1024);
        let pc = 100;
        for _ in 0..16 {
            let (pred, cp) = p.predict(pc);
            p.update(pc, true, pred, &cp);
        }
        let (pred, _) = p.predict(pc);
        assert!(pred, "should have learned taken");
    }

    #[test]
    fn tournament_learns_alternating_via_local_history() {
        let mut p = TournamentPredictor::new(256, 1024, 1024);
        let pc = 7;
        let mut outcome = false;
        let mut correct = 0;
        for i in 0..200 {
            let (pred, cp) = p.predict(pc);
            if i >= 100 && pred == outcome {
                correct += 1;
            }
            p.update(pc, outcome, pred, &cp);
            outcome = !outcome;
        }
        assert!(
            correct > 80,
            "local history should capture alternation: {correct}/100"
        );
    }

    #[test]
    fn mistraining_then_flip_causes_mispredict() {
        // The SpectreV1 pattern: train taken, then the out-of-bounds access
        // goes the other way and the predictor follows its training.
        let mut p = TournamentPredictor::new(256, 1024, 1024);
        let pc = 40;
        for _ in 0..32 {
            let (pred, cp) = p.predict(pc);
            p.update(pc, true, pred, &cp);
        }
        let (pred, _) = p.predict(pc);
        assert!(pred, "mistrained predictor must predict taken");
    }

    #[test]
    fn btb_lookup_miss_then_hit() {
        let mut b = Btb::new(64);
        assert_eq!(b.lookup(5), None);
        b.update(5, 42);
        assert_eq!(b.lookup(5), Some(42));
        // Aliasing entry replaces.
        b.update(5 + 64, 99);
        assert_eq!(b.lookup(5), None);
        assert_eq!(b.lookup(5 + 64), Some(99));
    }

    #[test]
    fn ras_push_pop_round_trips() {
        let mut r = Ras::new(4);
        r.push(10);
        r.push(20);
        assert_eq!(r.pop(), 20);
        assert_eq!(r.pop(), 10);
    }

    #[test]
    fn ras_wraps_and_clobbers_oldest() {
        // Push 5 into a 4-deep stack: the oldest is clobbered — the
        // underflow/overflow behavior SpectreRSB leans on.
        let mut r = Ras::new(4);
        for v in 1..=5 {
            r.push(v * 100);
        }
        assert_eq!(r.pop(), 500);
        assert_eq!(r.pop(), 400);
        assert_eq!(r.pop(), 300);
        assert_eq!(r.pop(), 200);
        // Wrapped: does not return 100.
        assert_ne!(r.pop(), 100);
    }

    #[test]
    fn ras_restore_undoes_speculative_pop() {
        let mut r = Ras::new(4);
        r.push(111);
        let (tos, top) = r.checkpoint();
        assert_eq!(r.pop(), 111);
        r.restore(tos, top);
        assert_eq!(r.pop(), 111);
    }

    #[test]
    fn ghr_restore_repairs_wrong_path_history() {
        let mut p = TournamentPredictor::new(256, 1024, 1024);
        let before = p.ghr();
        let (pred, cp) = p.predict(123);
        assert_ne!(
            p.ghr(),
            before << 1 | (!pred as u64),
            "ghr speculatively updated"
        );
        p.restore_ghr(cp.ghr);
        assert_eq!(p.ghr(), before);
    }
}
