//! The decoded-instruction cache: every static instruction is decoded
//! once per program, keyed by pc.
//!
//! The pipeline asks the same questions about an instruction on every
//! fetch and on several later stages — op class, functional-unit pool,
//! control kind, load/store/serializing/non-speculative flags, register
//! operands. All of those are pure functions of the static [`Inst`], so
//! the core derives them once in [`DecodedProgram::new`] and the fetch
//! stage stamps the cached answers into each [`DynInst`](crate::dyninst::DynInst)
//! via [`DynInst::from_decoded`](crate::dyninst::DynInst::from_decoded)
//! instead of re-matching on the enum in every stage of every cycle.

use uarch_isa::{Inst, OpClass, Program, Reg};

use crate::pipeline::ctrl_kind;
use crate::stats::CtrlKind;

/// Maps an op class to its functional-unit pool index: 0 = integer ALU,
/// 1 = integer multiply/divide, 2 = floating point, 3 = SIMD,
/// 4 = memory ports.
pub(crate) fn fu_pool(class: OpClass) -> usize {
    match class {
        OpClass::IntAlu | OpClass::NoOpClass => 0,
        OpClass::IntMult | OpClass::IntDiv => 1,
        OpClass::FloatAdd
        | OpClass::FloatMult
        | OpClass::FloatDiv
        | OpClass::FloatSqrt
        | OpClass::FloatCvt => 2,
        OpClass::SimdAdd | OpClass::SimdMult | OpClass::SimdCvt => 3,
        OpClass::MemRead | OpClass::MemWrite | OpClass::FloatMemRead | OpClass::FloatMemWrite => 4,
    }
}

/// One statically decoded instruction: the instruction itself plus every
/// property the pipeline derives from it.
#[derive(Debug, Clone, Copy)]
pub struct DecodedInst {
    /// The static instruction.
    pub inst: Inst,
    /// Op class (functional-unit selection, per-class statistics).
    pub class: OpClass,
    /// Functional-unit pool index for `class`.
    pub pool: usize,
    /// Control-flow kind, if this is a control instruction.
    pub ctrl_kind: Option<CtrlKind>,
    /// Any control-flow instruction.
    pub ctrl: bool,
    /// A load.
    pub load: bool,
    /// A store.
    pub store: bool,
    /// Rename must drain the window before dispatching this.
    pub serializing: bool,
    /// May only execute at the head of the ROB.
    pub non_speculative: bool,
    /// Destination architectural register, if written.
    pub dest: Option<Reg>,
    /// Source architectural registers (up to two).
    pub sources: (Option<Reg>, Option<Reg>),
}

impl DecodedInst {
    /// Decodes one static instruction.
    pub fn decode(inst: Inst) -> Self {
        let class = inst.op_class();
        Self {
            inst,
            class,
            pool: fu_pool(class),
            ctrl_kind: ctrl_kind(inst),
            ctrl: inst.is_control(),
            load: matches!(inst, Inst::Load { .. }),
            store: matches!(inst, Inst::Store { .. }),
            serializing: inst.is_serializing(),
            non_speculative: inst.is_non_speculative(),
            dest: inst.dest(),
            sources: inst.sources(),
        }
    }
}

/// A program with every instruction pre-decoded, indexed by pc.
///
/// Out-of-range fetches (speculative wrong-path pcs past the end of the
/// program) resolve to a decoded `Halt`, mirroring
/// `Program::fetch(pc).unwrap_or(Inst::Halt)` on the original path.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    insts: Vec<DecodedInst>,
    halt: DecodedInst,
}

impl DecodedProgram {
    /// Decodes every instruction of `program` once.
    pub fn new(program: &Program) -> Self {
        Self {
            insts: program
                .code()
                .iter()
                .map(|&i| DecodedInst::decode(i))
                .collect(),
            halt: DecodedInst::decode(Inst::Halt),
        }
    }

    /// The decoded instruction at `pc` (`Halt` past the end).
    pub fn fetch(&self, pc: usize) -> &DecodedInst {
        self.insts.get(pc).unwrap_or(&self.halt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_isa::{Assembler, Width};

    #[test]
    fn decode_matches_the_inst_helpers() {
        let insts = [
            Inst::Li {
                rd: Reg::R1,
                imm: 3,
            },
            Inst::Load {
                rd: Reg::R2,
                base: Reg::R1,
                offset: 0,
                width: Width::Double,
                fp: false,
            },
            Inst::Store {
                rs: Reg::R2,
                base: Reg::R1,
                offset: 8,
                width: Width::Double,
                fp: false,
            },
            Inst::Branch {
                cond: uarch_isa::Cond::Lt,
                ra: Reg::R1,
                rb: Reg::R2,
                target: 0,
            },
            Inst::Membar,
            Inst::Fence,
            Inst::Halt,
        ];
        for inst in insts {
            let d = DecodedInst::decode(inst);
            assert_eq!(d.class, inst.op_class());
            assert_eq!(d.pool, fu_pool(inst.op_class()));
            assert_eq!(d.ctrl, inst.is_control());
            assert_eq!(d.load, matches!(inst, Inst::Load { .. }));
            assert_eq!(d.store, matches!(inst, Inst::Store { .. }));
            assert_eq!(d.serializing, inst.is_serializing());
            assert_eq!(d.non_speculative, inst.is_non_speculative());
            assert_eq!(d.dest, inst.dest());
            assert_eq!(d.sources, inst.sources());
        }
    }

    #[test]
    fn out_of_range_pc_decodes_to_halt() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 1);
        a.halt();
        let p = a.finish().unwrap();
        let dp = DecodedProgram::new(&p);
        assert!(matches!(dp.fetch(0).inst, Inst::Li { .. }));
        assert!(matches!(dp.fetch(999).inst, Inst::Halt));
        assert_eq!(dp.fetch(999).class, OpClass::NoOpClass);
    }
}
