//! The core's gem5-style statistics inventory.
//!
//! Every pipeline stage owns a stat group; the paper's Table I feature names
//! (`fetch.SquashCycles`, `rename.UndoneMaps`, `iq.fu_full::IntAlu`,
//! `commit.NonSpecStalls`, `branchPred.RASInCorrect`, ...) map one-to-one
//! onto fields here.

use uarch_isa::OpClass;
use uarch_stats::{
    stat_group, Counter, Distribution, Scalar, StatItem, StatKey, StatVisitor, VectorStat,
};

/// Control-flow instruction kinds (for per-kind predictor and commit
/// statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CtrlKind {
    CondBranch,
    Jump,
    JumpIndirect,
    Call,
    CallIndirect,
    Return,
}

impl CtrlKind {
    /// All control kinds in stat order.
    pub const ALL: [CtrlKind; 6] = [
        CtrlKind::CondBranch,
        CtrlKind::Jump,
        CtrlKind::JumpIndirect,
        CtrlKind::Call,
        CtrlKind::CallIndirect,
        CtrlKind::Return,
    ];
}

impl StatKey for CtrlKind {
    const COUNT: usize = 6;

    fn index(self) -> usize {
        CtrlKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind in ALL")
    }

    fn label(i: usize) -> &'static str {
        [
            "CondBranch",
            "Jump",
            "JumpIndirect",
            "Call",
            "CallIndirect",
            "Return",
        ][i]
    }
}

/// Declares a `Distribution` newtype with a fixed bucket layout so it can
/// live inside `stat_group!` structs (which require `Default`).
macro_rules! dist_wrapper {
    ($(#[$meta:meta])* $name:ident, $lo:expr, $hi:expr, $n:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone)]
        pub struct $name(pub Distribution);

        impl Default for $name {
            fn default() -> Self {
                Self(Distribution::new($lo, $hi, $n))
            }
        }

        impl StatItem for $name {
            fn visit_item(&self, prefix: &str, name: &str, v: &mut dyn StatVisitor) {
                self.0.visit_item(prefix, name, v);
            }
        }
    };
}

dist_wrapper!(
    /// Per-cycle width distribution (0..=8 instructions).
    WidthDist, 0.0, 9.0, 9
);
dist_wrapper!(
    /// ROB occupancy distribution.
    RobOccupancyDist, 0.0, 192.0, 8
);
dist_wrapper!(
    /// IQ occupancy distribution.
    IqOccupancyDist, 0.0, 64.0, 8
);
dist_wrapper!(
    /// Load/store queue occupancy distribution.
    LsqOccupancyDist, 0.0, 32.0, 8
);
dist_wrapper!(
    /// Load-to-use latency distribution in cycles.
    LoadLatencyDist, 0.0, 400.0, 8
);
dist_wrapper!(
    /// Queue occupancy distribution (fetch/decode buffers).
    QueueOccDist, 0.0, 32.0, 8
);
dist_wrapper!(
    /// Dispatch-to-issue delay distribution in cycles.
    IssueDelayDist, 0.0, 64.0, 8
);
dist_wrapper!(
    /// Dispatch-to-commit latency distribution in cycles.
    CommitLatencyDist, 0.0, 256.0, 8
);
dist_wrapper!(
    /// Flush instruction latency distribution in cycles.
    FlushLatencyDist, 0.0, 120.0, 8
);
dist_wrapper!(
    /// Branch fetch-to-resolution delay distribution in cycles.
    ResolutionDelayDist, 0.0, 128.0, 8
);

stat_group! {
    /// Per-stage energy accounting (the paper examines "features related to
    /// energy consumption in different microarchitectural units").
    pub struct StageEnergy {
        /// Dynamic energy accumulated from per-instruction activity (pJ).
        pub dynamic_energy: Scalar => "dynamicEnergy",
        /// Static (leakage) energy accumulated per active cycle (pJ).
        pub static_energy: Scalar => "staticEnergy",
    }
}

stat_group! {
    /// Fetch stage statistics.
    pub struct FetchStats {
        /// Instructions fetched.
        pub insts: Counter => "Insts",
        /// Cycles fetch ran.
        pub cycles: Counter => "Cycles",
        /// Control instructions fetched.
        pub branches: Counter => "Branches",
        /// Branches predicted taken at fetch.
        pub predicted_branches: Counter => "predictedBranches",
        /// Cycles fetch spent squashing.
        pub squash_cycles: Counter => "SquashCycles",
        /// Cycles fetch waited on an I-cache miss.
        pub icache_stall_cycles: Counter => "IcacheStallCycles",
        /// I-cache misses whose response arrived after the fetch was
        /// squashed.
        pub icache_squashes: Counter => "IcacheSquashes",
        /// Cycles fetch was blocked by a full downstream queue.
        pub blocked_cycles: Counter => "BlockedCycles",
        /// Cycles fetch stalled for miscellaneous reasons.
        pub misc_stall_cycles: Counter => "MiscStallCycles",
        /// Cycles fetch stalled behind a pending quiesce (memory barrier in
        /// flight).
        pub pending_quiesce_stall_cycles: Counter => "PendingQuiesceStallCycles",
        /// Cycles fetch stalled behind a pending trap.
        pub pending_trap_stall_cycles: Counter => "PendingTrapStallCycles",
        /// Cycles fetch had drained and waited on a serializing instruction.
        pub pending_drain_cycles: Counter => "PendingDrainCycles",
        /// Cache lines fetched.
        pub cache_lines: Counter => "CacheLines",
        /// Cycles with no fetch activity at all.
        pub idle_cycles: Counter => "IdleCycles",
        /// Distribution of instructions fetched per cycle.
        pub nisn_dist: WidthDist => "rateDist",
        /// Fetched control instructions per kind.
        pub branch_kind: VectorStat<CtrlKind> => "branchDist",
        /// Fetch-queue occupancy, sampled per cycle.
        pub queue_occupancy: QueueOccDist => "queueOccupancy",
        /// Energy accounting.
        pub power: StageEnergy => "power",
    }
}

stat_group! {
    /// Decode stage statistics.
    pub struct DecodeStats {
        /// Instructions decoded.
        pub decoded_insts: Counter => "DecodedInsts",
        /// Cycles decode ran.
        pub run_cycles: Counter => "RunCycles",
        /// Idle cycles.
        pub idle_cycles: Counter => "IdleCycles",
        /// Cycles decode was blocked downstream.
        pub blocked_cycles: Counter => "BlockedCycles",
        /// Cycles decode spent squashing.
        pub squash_cycles: Counter => "SquashCycles",
        /// Branches whose target decode resolved early.
        pub branch_resolved: Counter => "BranchResolved",
        /// Branch mispredictions detected at decode.
        pub branch_mispred: Counter => "BranchMispred",
        /// Instructions dropped because they were squashed.
        pub squashed_insts: Counter => "SquashedInsts",
        /// Decode-queue occupancy, sampled per cycle.
        pub queue_occupancy: QueueOccDist => "queueOccupancy",
        /// Energy accounting.
        pub power: StageEnergy => "power",
    }
}

stat_group! {
    /// Rename stage statistics.
    pub struct RenameStats {
        /// Instructions renamed.
        pub renamed_insts: Counter => "RenamedInsts",
        /// Destination operands renamed (new mappings).
        pub renamed_operands: Counter => "RenamedOperands",
        /// Source operand lookups.
        pub rename_lookups: Counter => "RenameLookups",
        /// Cycles rename ran.
        pub run_cycles: Counter => "RunCycles",
        /// Idle cycles.
        pub idle_cycles: Counter => "IdleCycles",
        /// Cycles rename spent squashing.
        pub squash_cycles: Counter => "SquashCycles",
        /// Cycles rename was blocked on resources.
        pub block_cycles: Counter => "BlockCycles",
        /// Cycles rename was unblocking.
        pub unblock_cycles: Counter => "UnblockCycles",
        /// Stalls due to a full reorder buffer.
        pub rob_full_events: Counter => "ROBFullEvents",
        /// Stalls due to a full instruction queue.
        pub iq_full_events: Counter => "IQFullEvents",
        /// Stalls due to a full load queue.
        pub lq_full_events: Counter => "LQFullEvents",
        /// Stalls due to a full store queue.
        pub sq_full_events: Counter => "SQFullEvents",
        /// Stalls due to exhausted physical registers.
        pub full_registers_events: Counter => "FullRegistersEvents",
        /// Mappings undone by squashes.
        pub undone_maps: Counter => "UndoneMaps",
        /// Mappings retired at commit.
        pub committed_maps: Counter => "CommittedMaps",
        /// Serializing instructions handled.
        pub serializing_insts: Counter => "serializingInsts",
        /// Instructions marked temporarily serializing.
        pub temp_serializing_insts: Counter => "tempSerializingInsts",
        /// Cycles rename stalled to serialize.
        pub serialize_stall_cycles: Counter => "serializeStallCycles",
        /// Energy accounting.
        pub power: StageEnergy => "power",
    }
}

stat_group! {
    /// Instruction queue statistics.
    pub struct IqStats {
        /// Instructions added.
        pub insts_added: Counter => "iqInstsAdded",
        /// Non-speculative instructions added.
        pub non_spec_insts_added: Counter => "NonSpecInstsAdded",
        /// Instructions issued.
        pub insts_issued: Counter => "iqInstsIssued",
        /// Squashed instructions issued before the squash arrived.
        pub squashed_insts_issued: Counter => "iqSquashedInstsIssued",
        /// Squashed instructions examined during squash walks.
        pub squashed_insts_examined: Counter => "SquashedInstsExamined",
        /// Squashed operands examined during squash walks.
        pub squashed_operands_examined: Counter => "SquashedOperandsExamined",
        /// Squashed non-speculative instructions removed.
        pub squashed_non_spec_removed: Counter => "SquashedNonSpecRemoved",
        /// Issue attempts rejected because the functional unit was busy.
        pub fu_full: VectorStat<OpClass> => "fu_full",
        /// Instructions issued per op class.
        pub issued_inst_type: VectorStat<OpClass> => "statIssuedInstType_0",
        /// Cycles with no issue.
        pub empty_issue_cycles: Counter => "emptyIssueCycles",
        /// Full events.
        pub full_events: Counter => "iqFullEvents",
        /// Distribution of instructions issued per cycle.
        pub issued_per_cycle: WidthDist => "issued_per_cycle",
        /// IQ occupancy distribution (sampled per cycle).
        pub occupancy: IqOccupancyDist => "occupancy",
        /// Instructions whose execution completed, per op class.
        pub executed_class: VectorStat<OpClass> => "statExecutedInstType_0",
        /// Issues that consumed the last free unit of a pool.
        pub fu_busy: VectorStat<OpClass> => "fuBusy",
        /// Dispatch-to-issue delay distribution.
        pub issue_delay: IssueDelayDist => "issueDelay",
        /// Energy accounting.
        pub power: StageEnergy => "power",
    }
}

stat_group! {
    /// Load/store queue statistics (per thread in gem5; one thread here).
    pub struct LsqStats {
        /// Loads forwarded from an older store in the queue.
        pub forw_loads: Counter => "forwLoads",
        /// Loads squashed.
        pub squashed_loads: Counter => "squashedLoads",
        /// Stores squashed.
        pub squashed_stores: Counter => "squashedStores",
        /// Memory responses that arrived for already-squashed loads.
        pub ignored_responses: Counter => "ignoredResponses",
        /// Loads replayed because the cache or an address was not ready.
        pub rescheduled_loads: Counter => "rescheduledLoads",
        /// Loads blocked by a blocked cache.
        pub blocked_loads: Counter => "blockedLoads",
        /// Times the cache refused a request.
        pub cache_blocked: Counter => "cacheBlocked",
        /// Memory order violations detected.
        pub mem_order_violation: Counter => "memOrderViolation",
        /// Loads inserted.
        pub inserted_loads: Counter => "insertedLoads",
        /// Stores inserted.
        pub inserted_stores: Counter => "insertedStores",
        /// Load queue occupancy distribution.
        pub lq_occupancy: LsqOccupancyDist => "lqOccupancy",
        /// Store queue occupancy distribution.
        pub sq_occupancy: LsqOccupancyDist => "sqOccupancy",
        /// Load-to-use latency distribution.
        pub load_latency: LoadLatencyDist => "loadToUse",
        /// Distance (in sequence numbers) between forwarding store and load.
        pub forw_distance: IssueDelayDist => "forwDistance",
        /// Store dispatch-to-commit lifetime distribution.
        pub store_lifetime: CommitLatencyDist => "storeLifetime",
    }
}

stat_group! {
    /// Memory dependence unit statistics.
    pub struct MemDepStats {
        /// Loads that conflicted with an older store.
        pub conflicting_loads: Counter => "conflictingLoads",
        /// Stores that conflicted with a younger executed load.
        pub conflicting_stores: Counter => "conflictingStores",
        /// Dependence-unit lookups.
        pub lookups: Counter => "lookups",
        /// Loads inserted into the dependence unit.
        pub inserted_loads: Counter => "insertedLoads",
        /// Stores inserted into the dependence unit.
        pub inserted_stores: Counter => "insertedStores",
    }
}

stat_group! {
    /// Issue/execute/writeback stage statistics.
    pub struct IewStats {
        /// Cycles IEW spent squashing.
        pub squash_cycles: Counter => "SquashCycles",
        /// Cycles IEW was blocked.
        pub block_cycles: Counter => "BlockCycles",
        /// Idle cycles.
        pub idle_cycles: Counter => "IdleCycles",
        /// Cycles IEW was unblocking.
        pub unblock_cycles: Counter => "UnblockCycles",
        /// Instructions dispatched.
        pub dispatched_insts: Counter => "iewDispatchedInsts",
        /// Squashed instructions dispatched.
        pub disp_squashed_insts: Counter => "iewDispSquashedInsts",
        /// Load instructions dispatched.
        pub disp_load_insts: Counter => "iewDispLoadInsts",
        /// Store instructions dispatched.
        pub disp_store_insts: Counter => "iewDispStoreInsts",
        /// Non-speculative instructions dispatched.
        pub disp_non_spec_insts: Counter => "iewDispNonSpecInsts",
        /// Instructions executed.
        pub executed_insts: Counter => "iewExecutedInsts",
        /// Loads executed.
        pub executed_load_insts: Counter => "iewExecLoadInsts",
        /// Squashed instructions executed.
        pub exec_squashed_insts: Counter => "iewExecSquashedInsts",
        /// Branches executed.
        pub exec_branches: Counter => "exec_branches",
        /// Branch mispredictions detected at execute.
        pub branch_mispredicts: Counter => "branchMispredicts",
        /// Predicted-taken branches that were actually not taken.
        pub predicted_taken_incorrect: Counter => "predictedTakenIncorrect",
        /// Predicted-not-taken branches that were actually taken.
        pub predicted_not_taken_incorrect: Counter => "predictedNotTakenIncorrect",
        /// Memory order violation squashes.
        pub mem_order_violation_events: Counter => "memOrderViolationEvents",
        /// Load/store queue statistics.
        pub lsq: LsqStats => "lsq.thread0",
        /// Memory dependence unit statistics.
        pub mem_dep: MemDepStats => "memDep",
        /// Flush (`clflush`) execution latency distribution.
        pub flush_latency: FlushLatencyDist => "flushLatency",
        /// Branch fetch-to-resolution delay distribution.
        pub resolution_delay: ResolutionDelayDist => "branchResolutionDelay",
        /// Energy accounting.
        pub power: StageEnergy => "power",
    }
}

stat_group! {
    /// Commit stage statistics.
    pub struct CommitStats {
        /// Instructions committed.
        pub committed_insts: Counter => "committedInsts",
        /// Micro-ops committed (same as instructions here).
        pub committed_ops: Counter => "committedOps",
        /// Instructions squashed at commit.
        pub squashed_insts: Counter => "SquashedInsts",
        /// Cycles the ROB head held a non-speculative instruction waiting to
        /// execute.
        pub non_spec_stalls: Counter => "NonSpecStalls",
        /// Branches committed.
        pub branches: Counter => "branches",
        /// Branch mispredictions that reached commit.
        pub branch_mispredicts: Counter => "branchMispredicts",
        /// Loads committed.
        pub loads: Counter => "loads",
        /// Memory references committed.
        pub refs: Counter => "refs",
        /// Memory barriers committed.
        pub membars: Counter => "membars",
        /// Stores committed.
        pub committed_stores: Counter => "stores",
        /// Function calls committed.
        pub function_calls: Counter => "functionCalls",
        /// Integer instructions committed.
        pub int_insts: Counter => "int_insts",
        /// Floating-point instructions committed.
        pub fp_insts: Counter => "fp_insts",
        /// Faults delivered at commit.
        pub faults: Counter => "faults",
        /// Committed op-class distribution.
        pub op_class: VectorStat<OpClass> => "op_class_0",
        /// Distribution of instructions committed per cycle.
        pub committed_per_cycle: WidthDist => "committed_per_cycle",
        /// Cycles commit was idle (nothing to commit).
        pub idle_cycles: Counter => "IdleCycles",
        /// Committed control instructions per kind.
        pub control_kind: VectorStat<CtrlKind> => "controlDist",
        /// Dispatch-to-commit latency distribution.
        pub commit_latency: CommitLatencyDist => "commitLatency",
        /// Energy accounting.
        pub power: StageEnergy => "power",
    }
}

stat_group! {
    /// Reorder buffer statistics.
    pub struct RobStats {
        /// ROB reads.
        pub reads: Counter => "rob_reads",
        /// ROB writes.
        pub writes: Counter => "rob_writes",
        /// ROB occupancy distribution (sampled per cycle).
        pub occupancy: RobOccupancyDist => "occupancy",
        /// Age (cycles since dispatch) of the ROB head, sampled per cycle.
        pub head_age: CommitLatencyDist => "headAge",
    }
}

stat_group! {
    /// Branch predictor statistics.
    pub struct BPredStats {
        /// Predictor lookups.
        pub lookups: Counter => "lookups",
        /// Conditional branches predicted.
        pub cond_predicted: Counter => "condPredicted",
        /// Conditional branches mispredicted.
        pub cond_incorrect: Counter => "condIncorrect",
        /// BTB lookups.
        pub btb_lookups: Counter => "BTBLookups",
        /// BTB hits.
        pub btb_hits: Counter => "BTBHits",
        /// RAS predictions used.
        pub ras_used: Counter => "RASUsed",
        /// RAS mispredictions.
        pub ras_incorrect: Counter => "RASInCorrect",
        /// Indirect-target lookups.
        pub indirect_lookups: Counter => "indirectLookups",
        /// Indirect-target hits.
        pub indirect_hits: Counter => "indirectHits",
        /// Indirect-target mispredictions.
        pub indirect_mispredicted: Counter => "indirectMispredicted",
        /// Predictor table updates.
        pub updates: Counter => "condUpdated",
        /// Lookups per control kind.
        pub lookup_kind: VectorStat<CtrlKind> => "lookupDist",
    }
}

stat_group! {
    /// TLB statistics (gem5 `dtb` / `itb`).
    pub struct TlbStats {
        /// Read accesses.
        pub rd_accesses: Counter => "rdAccesses",
        /// Write accesses.
        pub wr_accesses: Counter => "wrAccesses",
        /// Read misses.
        pub rd_misses: Counter => "rdMisses",
        /// Write misses.
        pub wr_misses: Counter => "wrMisses",
        /// Read hits.
        pub rd_hits: Counter => "rdHits",
        /// Write hits.
        pub wr_hits: Counter => "wrHits",
        /// Cycles spent walking the page table on misses.
        pub walk_cycles: Counter => "walkCycles",
    }
}

stat_group! {
    /// Top-level CPU statistics.
    pub struct CpuStats {
        /// Cycles simulated.
        pub num_cycles: Counter => "numCycles",
        /// Integer register file reads.
        pub int_regfile_reads: Counter => "int_regfile_reads",
        /// Integer register file writes.
        pub int_regfile_writes: Counter => "int_regfile_writes",
        /// Float register file reads.
        pub fp_regfile_reads: Counter => "fp_regfile_reads",
        /// Float register file writes.
        pub fp_regfile_writes: Counter => "fp_regfile_writes",
        /// Integer ALU accesses.
        pub int_alu_accesses: Counter => "int_alu_accesses",
        /// FP ALU accesses.
        pub fp_alu_accesses: Counter => "fp_alu_accesses",
        /// Cycles quiesced.
        pub quiesce_cycles: Counter => "quiesceCycles",
        /// Squash events of any kind.
        pub squash_events: Counter => "squashEvents",
        /// Traps taken.
        pub traps: Counter => "traps",
        /// Miscellaneous register reads (cycle counter and friends).
        pub misc_regfile_reads: Counter => "misc_regfile_reads",
        /// Miscellaneous register writes.
        pub misc_regfile_writes: Counter => "misc_regfile_writes",
        /// Cycles with an empty instruction window.
        pub idle_cycles: Counter => "idleCycles",
        /// Cycles with at least one instruction in flight.
        pub busy_cycles: Counter => "busyCycles",
        /// Load instructions fetched.
        pub num_load_insts: Counter => "numLoadInsts",
        /// Store instructions fetched.
        pub num_store_insts: Counter => "numStoreInsts",
        /// Branch instructions fetched.
        pub num_branches: Counter => "numBranches",
        /// Fetch suspensions (halt or end of program reached).
        pub num_fetch_suspends: Counter => "numFetchSuspends",
    }
}

/// Consistency invariants every snapshot of a [`Core`](crate::Core)
/// (taken with an empty prefix) must satisfy.
///
/// These are the relations the counters encode by construction: a committed
/// instruction was fetched, a TLB access either hit or missed, cycle
/// counters only grow. The `uarch-analysis` crate checks them after runs;
/// violations mean a stat was double-counted, dropped, or updated in the
/// wrong place.
pub fn stat_invariants() -> Vec<uarch_stats::StatInvariant> {
    use uarch_stats::StatInvariant as I;
    vec![
        // The pipeline can only commit what it fetched.
        I::le(
            "committed-le-fetched",
            "commit.committedInsts",
            "fetch.Insts",
        ),
        I::le("decoded-le-fetched", "decode.DecodedInsts", "fetch.Insts"),
        I::le(
            "renamed-le-decoded",
            "rename.RenamedInsts",
            "decode.DecodedInsts",
        ),
        I::le(
            "committed-le-renamed",
            "commit.committedInsts",
            "rename.RenamedInsts",
        ),
        // Committed sub-categories are bounded by total commits.
        I::le(
            "branches-le-committed",
            "commit.branches",
            "commit.committedInsts",
        ),
        I::le(
            "membars-le-committed",
            "commit.membars",
            "commit.committedInsts",
        ),
        I::le("loads-le-refs", "commit.loads", "commit.refs"),
        I::le("refs-le-committed", "commit.refs", "commit.committedInsts"),
        I::le(
            "mispredicts-le-branches",
            "commit.branchMispredicts",
            "commit.branches",
        ),
        // TLB hit/miss accounting must tile the accesses exactly.
        I::sum_eq(
            "dtb-read-tiling",
            &["dtb.rdHits", "dtb.rdMisses"],
            "dtb.rdAccesses",
        ),
        I::sum_eq(
            "dtb-write-tiling",
            &["dtb.wrHits", "dtb.wrMisses"],
            "dtb.wrAccesses",
        ),
        I::sum_eq(
            "itb-read-tiling",
            &["itb.rdHits", "itb.rdMisses"],
            "itb.rdAccesses",
        ),
        // Predictor hit counters are bounded by their lookup counters.
        I::le(
            "cond-incorrect-le-predicted",
            "branchPred.condIncorrect",
            "branchPred.condPredicted",
        ),
        I::le(
            "btb-hits-le-lookups",
            "branchPred.BTBHits",
            "branchPred.BTBLookups",
        ),
        I::le(
            "indirect-hits-le-lookups",
            "branchPred.indirectHits",
            "branchPred.indirectLookups",
        ),
        // Progress counters never move backwards between samples.
        I::monotonic("cycles-monotone", "numCycles"),
        I::monotonic("fetched-monotone", "fetch.Insts"),
        I::monotonic("committed-monotone", "commit.committedInsts"),
        I::monotonic("faults-monotone", "commit.faults"),
    ]
}

#[cfg(test)]
mod tests {
    use uarch_stats::Snapshot;

    /// Snapshots a freshly built machine (the stage components now own the
    /// stat groups, so the full core is the only place all of them meet).
    fn machine_snapshot() -> Snapshot {
        let mut a = uarch_isa::Assembler::new("census");
        a.halt();
        let core = crate::Core::new(crate::CoreConfig::default(), a.finish().expect("assembles"));
        Snapshot::of(&core, "")
    }

    #[test]
    fn paper_table_i_names_all_exist() {
        let snap = machine_snapshot();
        for name in [
            "commit.SquashedInsts",
            "lsq.squashedStores",
            "iew.memOrderViolationEvents",
            "fetch.SquashCycles",
            "iew.lsq.thread0.forwLoads",
            "decode.SquashCycles",
            "iq.SquashedInstsExamined",
            "lsq.squashedLoads",
            "iew.SquashCycles",
            "iew.BlockCycles",
            "memDep.conflictingStores",
            "dtb.rdMisses",
            "dtlb.rdMisses",
            "iq.SquashedNonSpecRemoved",
            "rename.SquashCycles",
            "memDep.conflictingLoads",
            "rename.UndoneMaps",
            "fetch.IcacheSquashes",
            "iq.SquashedOperandsExamined",
            "commit.NonSpecStalls",
            "rename.serializingInsts",
            "commit.membars",
            "rename.serializeStallCycles",
            "iq.NonSpecInstsAdded",
            "branchPred.condIncorrect",
            "commit.op_class_0::No_OpClass",
            "iew.iewExecSquashedInsts",
            "iew.lsq.thread0.ignoredResponses",
            "iq.iqSquashedInstsIssued",
            "iew.iewDispSquashedInsts",
            "branchPred.RASInCorrect",
            "iq.fu_full::FloatMemWrite",
            "commit.op_class_0::FloatAdd",
            "fetch.PendingQuiesceStallCycles",
            "iew.lsq.thread0.rescheduledLoads",
            "commit.branchMispredicts",
            "branchPred.indirectMispredicted",
            "commit.op_class_0::SimdCvt",
            "iq.fu_full::IntAlu",
            "iew.branchMispredicts",
            "iew.predictedNotTakenIncorrect",
            "iq.fu_full::FloatMemWrite",
            "iq.fu_full::MemRead",
            "fetch.MiscStallCycles",
            "fetch.PendingTrapStallCycles",
            "rename.CommittedMaps",
            "rename.tempSerializingInsts",
            "rename.LQFullEvents",
        ] {
            assert!(snap.get(name).is_some(), "missing stat {name}");
        }
    }

    #[test]
    fn core_stats_count_is_substantial() {
        let snap = machine_snapshot();
        assert!(
            snap.len() > 250,
            "expected a rich stat space, got {}",
            snap.len()
        );
    }
}
