//! In-flight (dynamic) instruction state.

use uarch_isa::{Inst, OpClass, Reg};

use crate::bpred::PredCheckpoint;
use crate::decoded::DecodedInst;
use crate::stats::CtrlKind;

/// A dynamic instruction traveling through the pipeline.
///
/// Lives in the core's instruction window (the ROB) from rename to commit;
/// the fetch and decode queues hold partially-initialized entries.
#[derive(Debug, Clone)]
pub struct DynInst {
    /// Global sequence number (program order).
    pub seq: u64,
    /// Instruction index in the program.
    pub pc: usize,
    /// The static instruction.
    pub inst: Inst,
    /// Fall-through pc (`pc + 1`).
    pub fall_through: usize,

    // ---- decode (cached static properties; see [`crate::decoded`]) ----
    /// Op class of `inst`.
    pub class: OpClass,
    /// Functional-unit pool index for `class`.
    pub pool: usize,
    /// Control-flow kind, if this is a control instruction.
    pub ctrl_kind: Option<CtrlKind>,
    /// Any control-flow instruction.
    pub ctrl: bool,
    /// A load (backing flag for [`DynInst::is_load`]).
    pub load: bool,
    /// A store (backing flag for [`DynInst::is_store`]).
    pub store: bool,
    /// Rename must drain the window before dispatching this.
    pub serializing: bool,
    /// Static non-speculative flag (rename copies it into `non_spec`).
    pub non_speculative: bool,
    /// Destination architectural register, if written.
    pub arch_dest: Option<Reg>,
    /// Source architectural registers (up to two).
    pub arch_srcs: (Option<Reg>, Option<Reg>),

    // ---- rename ----
    /// Physical destination register, if any.
    pub dest_phys: Option<usize>,
    /// Previous mapping of the destination architectural register.
    pub old_phys: Option<usize>,
    /// Physical source registers.
    pub srcs: [Option<usize>; 2],

    // ---- pipeline state ----
    /// Waiting in the instruction queue.
    pub in_iq: bool,
    /// Sent to a functional unit.
    pub issued: bool,
    /// Result produced / control resolved.
    pub executed: bool,
    /// Cycle at which the result becomes available.
    pub ready_cycle: u64,
    /// Squashed on a wrong path.
    pub squashed: bool,
    /// Must wait for commit's signal before executing.
    pub non_spec: bool,
    /// Commit has authorized a non-speculative execution.
    pub can_exec_non_spec: bool,
    /// Computed result value (destination register or store data).
    pub result: u64,

    // ---- control flow ----
    /// Predicted taken at fetch.
    pub predicted_taken: bool,
    /// Predicted next pc.
    pub predicted_target: usize,
    /// Resolved next pc (set at rename for returns, at execute otherwise).
    pub actual_target: usize,
    /// Resolved direction.
    pub actual_taken: bool,
    /// The prediction was wrong (set at execute).
    pub mispredicted: bool,
    /// Predictor state checkpoint for squash recovery.
    pub checkpoint: PredCheckpoint,

    // ---- memory ----
    /// Effective address once computed.
    pub eff_addr: Option<u64>,
    /// Access size in bytes.
    pub mem_size: u64,
    /// A memory response is still in flight.
    pub mem_outstanding: bool,
    /// The access faulted (privilege violation — delivered at commit).
    pub fault: bool,
    /// The load was satisfied by store-to-load forwarding.
    pub forwarded: bool,
    /// Oldest store sequence number that contributed forwarded bytes, set
    /// only when every loaded byte came from the store queue. Violation
    /// checks use this: a store resolving later squashes the load unless
    /// all of the load's bytes provably came from younger stores.
    pub fwd_youngest_seq: Option<u64>,
    /// Cycle this instruction was fetched.
    pub fetch_cycle: u64,
    /// Cycle this instruction was dispatched into the window.
    pub dispatch_cycle: u64,
    /// Cycle this instruction issued.
    pub issue_cycle: u64,
}

impl DynInst {
    /// Creates a fresh dynamic instruction, decoding `inst` on the spot.
    ///
    /// The fetch stage uses [`DynInst::from_decoded`] with the program's
    /// [`DecodedProgram`](crate::decoded::DecodedProgram) instead; this
    /// constructor is the convenience path for tests and ad-hoc callers.
    pub fn new(seq: u64, pc: usize, inst: Inst) -> Self {
        Self::from_decoded(seq, pc, &DecodedInst::decode(inst))
    }

    /// Creates a fresh dynamic instruction from a pre-decoded entry,
    /// copying the cached static properties instead of re-deriving them.
    pub fn from_decoded(seq: u64, pc: usize, dec: &DecodedInst) -> Self {
        Self {
            seq,
            pc,
            inst: dec.inst,
            fall_through: pc + 1,
            class: dec.class,
            pool: dec.pool,
            ctrl_kind: dec.ctrl_kind,
            ctrl: dec.ctrl,
            load: dec.load,
            store: dec.store,
            serializing: dec.serializing,
            non_speculative: dec.non_speculative,
            arch_dest: dec.dest,
            arch_srcs: dec.sources,
            dest_phys: None,
            old_phys: None,
            srcs: [None, None],
            in_iq: false,
            issued: false,
            executed: false,
            ready_cycle: u64::MAX,
            squashed: false,
            non_spec: false,
            can_exec_non_spec: false,
            result: 0,
            predicted_taken: false,
            predicted_target: pc + 1,
            actual_target: pc + 1,
            actual_taken: false,
            mispredicted: false,
            checkpoint: PredCheckpoint::default(),
            eff_addr: None,
            mem_size: 0,
            mem_outstanding: false,
            fault: false,
            forwarded: false,
            fwd_youngest_seq: None,
            fetch_cycle: 0,
            dispatch_cycle: 0,
            issue_cycle: 0,
        }
    }

    /// Whether this is a load.
    pub fn is_load(&self) -> bool {
        self.load
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        self.store
    }

    /// Whether this is a control-flow instruction.
    pub fn is_ctrl(&self) -> bool {
        self.ctrl
    }

    /// Whether the byte ranges of two memory operations overlap.
    pub fn mem_overlaps(&self, other: &DynInst) -> bool {
        match (self.eff_addr, other.eff_addr) {
            (Some(a), Some(b)) => a < b + other.mem_size && b < a + self.mem_size,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_isa::{Reg, Width};

    fn load_at(addr: u64, size: u64) -> DynInst {
        let mut d = DynInst::new(
            0,
            0,
            Inst::Load {
                rd: Reg::R1,
                base: Reg::R2,
                offset: 0,
                width: Width::Double,
                fp: false,
            },
        );
        d.eff_addr = Some(addr);
        d.mem_size = size;
        d
    }

    #[test]
    fn overlap_detection() {
        let a = load_at(100, 8);
        let b = load_at(104, 8);
        let c = load_at(108, 8);
        assert!(a.mem_overlaps(&b));
        assert!(!a.mem_overlaps(&c));
        assert!(b.mem_overlaps(&c));
    }

    #[test]
    fn unresolved_addresses_do_not_overlap() {
        let a = load_at(100, 8);
        let mut b = load_at(100, 8);
        b.eff_addr = None;
        assert!(!a.mem_overlaps(&b));
    }
}
