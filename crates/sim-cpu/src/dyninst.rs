//! In-flight (dynamic) instruction state.

use uarch_isa::Inst;

use crate::bpred::PredCheckpoint;

/// A dynamic instruction traveling through the pipeline.
///
/// Lives in the core's instruction window (the ROB) from rename to commit;
/// the fetch and decode queues hold partially-initialized entries.
#[derive(Debug, Clone)]
pub struct DynInst {
    /// Global sequence number (program order).
    pub seq: u64,
    /// Instruction index in the program.
    pub pc: usize,
    /// The static instruction.
    pub inst: Inst,
    /// Fall-through pc (`pc + 1`).
    pub fall_through: usize,

    // ---- rename ----
    /// Physical destination register, if any.
    pub dest_phys: Option<usize>,
    /// Previous mapping of the destination architectural register.
    pub old_phys: Option<usize>,
    /// Physical source registers.
    pub srcs: [Option<usize>; 2],

    // ---- pipeline state ----
    /// Waiting in the instruction queue.
    pub in_iq: bool,
    /// Sent to a functional unit.
    pub issued: bool,
    /// Result produced / control resolved.
    pub executed: bool,
    /// Cycle at which the result becomes available.
    pub ready_cycle: u64,
    /// Squashed on a wrong path.
    pub squashed: bool,
    /// Must wait for commit's signal before executing.
    pub non_spec: bool,
    /// Commit has authorized a non-speculative execution.
    pub can_exec_non_spec: bool,
    /// Computed result value (destination register or store data).
    pub result: u64,

    // ---- control flow ----
    /// Predicted taken at fetch.
    pub predicted_taken: bool,
    /// Predicted next pc.
    pub predicted_target: usize,
    /// Resolved next pc (set at rename for returns, at execute otherwise).
    pub actual_target: usize,
    /// Resolved direction.
    pub actual_taken: bool,
    /// The prediction was wrong (set at execute).
    pub mispredicted: bool,
    /// Predictor state checkpoint for squash recovery.
    pub checkpoint: PredCheckpoint,

    // ---- memory ----
    /// Effective address once computed.
    pub eff_addr: Option<u64>,
    /// Access size in bytes.
    pub mem_size: u64,
    /// A memory response is still in flight.
    pub mem_outstanding: bool,
    /// The access faulted (privilege violation — delivered at commit).
    pub fault: bool,
    /// The load was satisfied by store-to-load forwarding.
    pub forwarded: bool,
    /// Oldest store sequence number that contributed forwarded bytes, set
    /// only when every loaded byte came from the store queue. Violation
    /// checks use this: a store resolving later squashes the load unless
    /// all of the load's bytes provably came from younger stores.
    pub fwd_youngest_seq: Option<u64>,
    /// Cycle this instruction was fetched.
    pub fetch_cycle: u64,
    /// Cycle this instruction was dispatched into the window.
    pub dispatch_cycle: u64,
    /// Cycle this instruction issued.
    pub issue_cycle: u64,
}

impl DynInst {
    /// Creates a fresh dynamic instruction at fetch.
    pub fn new(seq: u64, pc: usize, inst: Inst) -> Self {
        Self {
            seq,
            pc,
            inst,
            fall_through: pc + 1,
            dest_phys: None,
            old_phys: None,
            srcs: [None, None],
            in_iq: false,
            issued: false,
            executed: false,
            ready_cycle: u64::MAX,
            squashed: false,
            non_spec: false,
            can_exec_non_spec: false,
            result: 0,
            predicted_taken: false,
            predicted_target: pc + 1,
            actual_target: pc + 1,
            actual_taken: false,
            mispredicted: false,
            checkpoint: PredCheckpoint::default(),
            eff_addr: None,
            mem_size: 0,
            mem_outstanding: false,
            fault: false,
            forwarded: false,
            fwd_youngest_seq: None,
            fetch_cycle: 0,
            dispatch_cycle: 0,
            issue_cycle: 0,
        }
    }

    /// Whether this is a load.
    pub fn is_load(&self) -> bool {
        matches!(self.inst, Inst::Load { .. })
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        matches!(self.inst, Inst::Store { .. })
    }

    /// Whether the byte ranges of two memory operations overlap.
    pub fn mem_overlaps(&self, other: &DynInst) -> bool {
        match (self.eff_addr, other.eff_addr) {
            (Some(a), Some(b)) => a < b + other.mem_size && b < a + self.mem_size,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_isa::{Reg, Width};

    fn load_at(addr: u64, size: u64) -> DynInst {
        let mut d = DynInst::new(
            0,
            0,
            Inst::Load {
                rd: Reg::R1,
                base: Reg::R2,
                offset: 0,
                width: Width::Double,
                fp: false,
            },
        );
        d.eff_addr = Some(addr);
        d.mem_size = size;
        d
    }

    #[test]
    fn overlap_detection() {
        let a = load_at(100, 8);
        let b = load_at(104, 8);
        let c = load_at(108, 8);
        assert!(a.mem_overlaps(&b));
        assert!(!a.mem_overlaps(&c));
        assert!(b.mem_overlaps(&c));
    }

    #[test]
    fn unresolved_addresses_do_not_overlap() {
        let a = load_at(100, 8);
        let mut b = load_at(100, 8);
        b.eff_addr = None;
        assert!(!a.mem_overlaps(&b));
    }
}
