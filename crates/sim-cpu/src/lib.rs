//! A cycle-driven out-of-order core with real speculative execution and a
//! gem5-style statistics inventory.
//!
//! The core reproduces the mechanisms microarchitectural attacks exploit:
//!
//! - **Speculation past branches** — fetch follows a tournament predictor,
//!   a 4096-entry BTB and a 16-entry return address stack; wrong-path
//!   instructions execute and leave cache footprints before the squash.
//! - **Late permission checks** — loads from kernel addresses forward their
//!   data speculatively and fault only at commit (the Meltdown window).
//! - **Timing read-out** — `rdcycle` is a serializing cycle-counter read, so
//!   workloads can implement Flush+Reload / Prime+Probe / Flush+Flush timers
//!   exactly as the PoCs do.
//!
//! # Example
//!
//! ```
//! use sim_cpu::{Core, CoreConfig};
//! use uarch_isa::{Assembler, Reg};
//!
//! let mut a = Assembler::new("demo");
//! a.li(Reg::R1, 21);
//! a.add(Reg::R2, Reg::R1, Reg::R1);
//! a.halt();
//! let mut core = Core::new(CoreConfig::default(), a.finish().unwrap());
//! let summary = core.run(100);
//! assert!(summary.halted);
//! assert_eq!(core.reg(Reg::R2), 42);
//! ```

#![warn(missing_docs)]

pub mod bpred;
pub mod config;
pub mod core;
pub mod decoded;
pub mod dyninst;
pub mod error;
pub mod machine;
pub mod pipeline;
pub mod stats;
pub mod tlb;

pub use crate::core::{Core, CoreStatsView, MarkEvent, RunSummary, KERNEL_SPACE_BASE};
pub use config::CoreConfig;
pub use decoded::{DecodedInst, DecodedProgram};
pub use error::SimError;
pub use machine::Machine;
pub use pipeline::{PipelineComponent, SquashRequest, TrapRequest};
pub use stats::stat_invariants;
