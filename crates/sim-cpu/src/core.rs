//! The out-of-order core: an 8-wide, speculative, register-renaming
//! pipeline with gem5-style statistics.
//!
//! The pipeline is cycle-driven. Each [`Core::step`] runs commit, execute,
//! issue, rename/dispatch, decode and fetch for one cycle. Speculation is
//! real: fetch follows the predictors, wrong-path instructions execute (and
//! touch the caches — the side-channel), and squash walks undo the rename
//! map, the call stack, the RAS and the global history.

use std::collections::VecDeque;

use sim_mem::{AccessOutcome, HierarchyConfig, MemoryHierarchy};
use uarch_isa::{AluOp, FaluOp, Inst, MarkKind, OpClass, Program, Reg};
use uarch_stats::{SampleSink, Sampler, Schema, StatGroup, StatVisitor};

use crate::bpred::{Btb, PredCheckpoint, Ras, TournamentPredictor};
use crate::config::CoreConfig;
use crate::dyninst::DynInst;
use crate::stats::{CoreStats, CtrlKind};
use crate::tlb::Tlb;

/// First byte address of the kernel half of the address space; any data
/// access at or above it faults at commit (but — Meltdown — data is still
/// forwarded speculatively).
pub const KERNEL_SPACE_BASE: u64 = 0x8000_0000;

/// A committed simulator mark (gem5 `m5ops` analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkEvent {
    /// What the workload annotated.
    pub kind: MarkKind,
    /// Committed-instruction count when the mark committed.
    pub at_inst: u64,
    /// Cycle when the mark committed.
    pub at_cycle: u64,
}

/// Outcome of a [`Core::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Instructions committed in total.
    pub committed: u64,
    /// Cycles simulated in total.
    pub cycles: u64,
    /// Whether the program halted.
    pub halted: bool,
}

#[derive(Debug, Clone, Copy)]
enum CallOp {
    Push,
    Pop(usize),
    Replace(usize),
}

#[derive(Debug, Clone, Copy)]
struct HistEntry {
    seq: u64,
    arch: usize,
    new_phys: usize,
    old_phys: usize,
}

/// The simulated machine: one out-of-order core plus its memory hierarchy.
pub struct Core {
    cfg: CoreConfig,
    program: Program,
    mem: MemoryHierarchy,
    stats: CoreStats,

    // Register state.
    map_table: [usize; Reg::COUNT],
    free_list: VecDeque<usize>,
    phys_regs: Vec<u64>,
    phys_ready: Vec<bool>,
    history: VecDeque<HistEntry>,

    // Instruction window.
    rob: VecDeque<DynInst>,
    next_seq: u64,
    fetch_q: VecDeque<DynInst>,
    decode_q: VecDeque<DynInst>,
    iq_used: usize,
    lq_used: usize,
    sq_used: usize,

    // Fetch state.
    pc: usize,
    fetch_stopped: bool,
    fetch_resume_at: u64,
    icache_outstanding: bool,
    icache_stall_until: u64,
    current_fetch_line: Option<u64>,
    trap_pending_until: u64,
    trap_redirect: usize,

    // Predictors.
    bp: TournamentPredictor,
    btb: Btb,
    ras: Ras,

    // TLBs.
    dtlb: Tlb,
    itlb: Tlb,

    // Architectural call stack (maintained speculatively at rename,
    // rolled back on squash).
    call_stack: Vec<usize>,
    call_hist: VecDeque<(u64, CallOp)>,

    membars_in_flight: usize,
    fault_recognized_at: Option<u64>,
    /// Branch-predictor noise: flip probability in parts per million.
    bp_noise_ppm: u32,
    noise_rng: u64,

    cycle: u64,
    committed: u64,
    halted: bool,
    marks: Vec<MarkEvent>,
}

impl Core {
    /// Builds a core running `program` on a default memory hierarchy.
    pub fn new(cfg: CoreConfig, program: Program) -> Self {
        Self::with_hierarchy(cfg, program, HierarchyConfig::default())
    }

    /// Builds a core with an explicit memory hierarchy configuration.
    pub fn with_hierarchy(cfg: CoreConfig, program: Program, hcfg: HierarchyConfig) -> Self {
        let mut mem = MemoryHierarchy::new(hcfg);
        for seg in program.segments() {
            mem.memory_mut().write_bytes(seg.base, &seg.data);
        }
        let phys = cfg.phys_int_regs;
        let mut map_table = [0usize; Reg::COUNT];
        for (i, m) in map_table.iter_mut().enumerate() {
            *m = i;
        }
        Self {
            bp: TournamentPredictor::new(
                cfg.local_predictor_size,
                cfg.global_predictor_size,
                cfg.choice_predictor_size,
            ),
            btb: Btb::new(cfg.btb_entries),
            ras: Ras::new(cfg.ras_entries),
            dtlb: Tlb::new(cfg.dtlb_entries, 20),
            itlb: Tlb::new(cfg.itlb_entries, 20),
            map_table,
            free_list: (Reg::COUNT..phys).collect(),
            phys_regs: vec![0; phys],
            phys_ready: vec![true; phys],
            history: VecDeque::new(),
            rob: VecDeque::new(),
            next_seq: 1,
            fetch_q: VecDeque::new(),
            decode_q: VecDeque::new(),
            iq_used: 0,
            lq_used: 0,
            sq_used: 0,
            pc: 0,
            fetch_stopped: false,
            fetch_resume_at: 0,
            icache_outstanding: false,
            icache_stall_until: 0,
            current_fetch_line: None,
            trap_pending_until: 0,
            trap_redirect: 0,
            call_stack: Vec::new(),
            call_hist: VecDeque::new(),
            membars_in_flight: 0,
            fault_recognized_at: None,
            bp_noise_ppm: 0,
            noise_rng: 0x243f_6a88_85a3_08d3,
            cycle: 0,
            committed: 0,
            halted: false,
            marks: Vec::new(),
            stats: CoreStats::default(),
            cfg,
            program,
            mem,
        }
    }

    /// The core statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The memory hierarchy (caches, buses, DRAM, backing memory).
    pub fn mem(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Committed instruction count.
    pub fn committed_insts(&self) -> u64 {
        self.committed
    }

    /// Cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Whether the program has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Committed simulator marks, oldest first.
    pub fn marks(&self) -> &[MarkEvent] {
        &self.marks
    }

    /// Architectural value of register `r` (through the rename map).
    pub fn reg(&self, r: Reg) -> u64 {
        self.phys_regs[self.map_table[r.index()]]
    }

    /// Enables branch-predictor noise injection: each conditional
    /// prediction is flipped with probability `p` — the §IV-G1 mitigation
    /// against predictor-mistraining attacks ("inject noise into the
    /// branch predictor ... so that it occasionally reverses its
    /// taken/not-taken prediction").
    pub fn set_bp_noise(&mut self, p: f64) {
        self.bp_noise_ppm = (p.clamp(0.0, 1.0) * 1_000_000.0) as u32;
    }

    /// Reseeds the branch-predictor noise RNG. Seeding is deterministic:
    /// the same seed always reproduces the same flip sequence, so corpus
    /// collection can give every workload its own stable stream regardless
    /// of which thread runs it. A zero seed is remapped (xorshift sticks at
    /// zero).
    pub fn set_noise_seed(&mut self, seed: u64) {
        self.noise_rng = if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        };
    }

    /// Applies CEASER-style cache index randomization (see
    /// [`MemoryHierarchy::randomize_indexing`]).
    pub fn randomize_cache_indexing(&mut self, key: u64) {
        self.mem.randomize_indexing(key);
    }

    fn noise_flip(&mut self) -> bool {
        if self.bp_noise_ppm == 0 {
            return false;
        }
        // xorshift64*
        self.noise_rng ^= self.noise_rng << 13;
        self.noise_rng ^= self.noise_rng >> 7;
        self.noise_rng ^= self.noise_rng << 17;
        (self.noise_rng % 1_000_000) < self.bp_noise_ppm as u64
    }

    /// Runs until the program halts or `max_insts` more instructions commit.
    /// Returns a summary of total progress.
    pub fn run(&mut self, max_insts: u64) -> RunSummary {
        let target = self.committed.saturating_add(max_insts);
        let cycle_cap = self.cycle + max_insts.saturating_mul(40) + 2_000_000;
        while !self.halted && self.committed < target && self.cycle < cycle_cap {
            self.step();
        }
        RunSummary {
            committed: self.committed,
            cycles: self.cycle,
            halted: self.halted,
        }
    }

    /// Resolves the core's full statistic schema (all 1159 dotted names)
    /// without sampling. The returned schema shares storage with every
    /// clone, so it is cheap to hand to sinks and worker threads.
    pub fn stat_schema(&self) -> Schema {
        Schema::of(self, "")
    }

    /// Runs until the program halts or `insts` instructions commit,
    /// emitting one per-interval stat-delta row to `sink` every `interval`
    /// committed instructions — the paper's online sampling unit, observed
    /// as it happens instead of materialized after the run.
    ///
    /// The sampler's baseline is the core's *current* counters, so deltas
    /// cover exactly the instructions executed by this call. Sampling stops
    /// early if the program halts or stalls before reaching the next
    /// interval boundary (a final partial window is never emitted, matching
    /// the batch collector).
    pub fn run_with_sink(
        &mut self,
        insts: u64,
        interval: u64,
        sink: &mut dyn SampleSink,
    ) -> RunSummary {
        assert!(interval > 0, "sampling interval must be positive");
        let mut sampler = Sampler::new(&*self, "");
        let mut next = interval;
        let mut summary = RunSummary {
            committed: self.committed,
            cycles: self.cycle,
            halted: self.halted,
        };
        while next <= insts {
            summary = self.run(next - self.committed_insts());
            if self.halted() || self.committed_insts() < next {
                break; // program ended or stalled
            }
            sampler.sample_into(&*self, self.committed_insts(), sink);
            next += interval;
        }
        summary
    }

    /// Advances the machine one cycle.
    pub fn step(&mut self) {
        self.commit();
        self.execute();
        self.issue();
        self.rename_dispatch();
        self.decode();
        self.fetch();
        self.end_of_cycle();
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        let mut committed_this_cycle = 0u64;
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else {
                self.stats.commit.idle_cycles.inc();
                break;
            };
            if !head.executed {
                if head.non_spec {
                    self.stats.commit.non_spec_stalls.inc();
                    if !head.can_exec_non_spec {
                        let seq = head.seq;
                        self.inst_mut(seq).can_exec_non_spec = true;
                    }
                }
                break;
            }

            let head = self.rob.front().expect("checked above");
            if head.fault {
                // Exception recognition takes a few cycles; dependents of the
                // faulting instruction keep executing speculatively in that
                // window (the Meltdown window).
                match self.fault_recognized_at {
                    None => {
                        self.fault_recognized_at =
                            Some(self.cycle + self.cfg.fault_recognition_delay);
                        break;
                    }
                    Some(at) if self.cycle < at => break,
                    Some(_) => self.fault_recognized_at = None,
                }
                self.stats.commit.faults.inc();
                self.stats.cpu.traps.inc();
                let seq = head.seq;
                let handler = self.program.fault_handler();
                self.squash_after(seq.wrapping_sub(1), None);
                self.trap_pending_until = self.cycle + self.cfg.trap_latency;
                match handler {
                    Some(h) => {
                        self.trap_redirect = h;
                        self.fetch_stopped = false;
                    }
                    None => {
                        self.halted = true;
                    }
                }
                self.pc = self.trap_redirect;
                return;
            }

            let head = self.rob.pop_front().expect("checked above");
            committed_this_cycle += 1;
            self.committed += 1;
            self.stats.commit.committed_insts.inc();
            self.stats.commit.committed_ops.inc();
            self.stats.rob.reads.inc();
            let class = head.inst.op_class();
            self.stats.commit.op_class.inc(class);
            match class {
                OpClass::IntAlu | OpClass::IntMult | OpClass::IntDiv => {
                    self.stats.commit.int_insts.inc()
                }
                OpClass::FloatAdd
                | OpClass::FloatMult
                | OpClass::FloatDiv
                | OpClass::FloatSqrt
                | OpClass::FloatCvt => self.stats.commit.fp_insts.inc(),
                _ => {}
            }

            match head.inst {
                Inst::Load { .. } => {
                    self.stats.commit.loads.inc();
                    self.stats.commit.refs.inc();
                    self.lq_used -= 1;
                }
                Inst::Store { rs: _, width, .. } => {
                    self.stats.commit.committed_stores.inc();
                    self.stats.commit.refs.inc();
                    self.stats
                        .iew
                        .lsq
                        .store_lifetime
                        .0
                        .record(self.cycle.saturating_sub(head.dispatch_cycle) as f64);
                    self.sq_used -= 1;
                    let addr = head.eff_addr.expect("store executed");
                    self.mem.store(addr, width.bytes(), head.result, self.cycle);
                }
                Inst::Flush { .. } => {
                    self.stats.commit.refs.inc();
                }
                Inst::Membar => {
                    self.stats.commit.membars.inc();
                    self.membars_in_flight -= 1;
                }
                Inst::Call { .. } | Inst::CallInd { .. } => {
                    self.stats.commit.function_calls.inc();
                }
                Inst::Mark(kind) => {
                    self.marks.push(MarkEvent {
                        kind,
                        at_inst: self.committed,
                        at_cycle: self.cycle,
                    });
                }
                Inst::Halt => {
                    self.halted = true;
                }
                _ => {}
            }

            if head.inst.is_control() {
                self.stats.commit.branches.inc();
                if let Some(k) = ctrl_kind(head.inst) {
                    self.stats.commit.control_kind.inc(k);
                }
                if head.mispredicted {
                    self.stats.commit.branch_mispredicts.inc();
                }
            }
            self.stats
                .commit
                .commit_latency
                .0
                .record(self.cycle.saturating_sub(head.dispatch_cycle) as f64);
            self.stats.commit.power.dynamic_energy.add(1.0);

            // Retire the rename mapping.
            while let Some(h) = self.history.front() {
                if h.seq != head.seq {
                    break;
                }
                let h = self.history.pop_front().expect("checked");
                self.free_list.push_back(h.old_phys);
                self.stats.rename.committed_maps.inc();
            }
            while let Some(&(seq, _)) = self.call_hist.front() {
                if seq != head.seq {
                    break;
                }
                self.call_hist.pop_front();
            }

            if self.halted {
                break;
            }
        }
        self.stats
            .commit
            .committed_per_cycle
            .0
            .record(committed_this_cycle as f64);
    }

    // ------------------------------------------------------------------
    // Execute (completions, branch resolution)
    // ------------------------------------------------------------------

    fn execute(&mut self) {
        // Collect completions this cycle.
        let mut resolved_branch = false;
        let mut completions: Vec<u64> = Vec::new();
        for d in &self.rob {
            if d.issued && !d.executed && !d.squashed && d.ready_cycle <= self.cycle {
                completions.push(d.seq);
            }
        }
        for seq in completions {
            let (dest, result, is_ctrl, is_load) = {
                let d = self.inst_mut(seq);
                d.executed = true;
                d.mem_outstanding = false;
                (d.dest_phys, d.result, d.inst.is_control(), d.is_load())
            };
            if let Some(p) = dest {
                self.phys_regs[p] = result;
                self.phys_ready[p] = true;
                self.stats.cpu.int_regfile_writes.inc();
            }
            self.stats.iew.executed_insts.inc();
            self.stats.iew.power.dynamic_energy.add(1.4);
            {
                let class = self.inst_of(seq).inst.op_class();
                self.stats.iq.executed_class.inc(class);
            }
            if is_load {
                self.stats.iew.executed_load_insts.inc();
            }
            if is_ctrl && !resolved_branch {
                // Resolve at most one control instruction per cycle (the
                // oldest); younger ones will re-resolve after any squash.
                let mispredict = {
                    let d = self.inst_of(seq);
                    d.predicted_target != d.actual_target
                        || (matches!(d.inst, Inst::Branch { .. })
                            && d.predicted_taken != d.actual_taken)
                };
                self.resolve_branch(seq, mispredict);
                if mispredict {
                    resolved_branch = true;
                    let _ = resolved_branch;
                    // Squash handled inside resolve_branch; stop processing
                    // younger completions (they were squashed).
                    break;
                }
            }
        }
    }

    fn resolve_branch(&mut self, seq: u64, mispredict: bool) {
        let (inst, pc, taken, pred_taken, cp, actual_target) = {
            let d = self.inst_of(seq);
            (
                d.inst,
                d.pc,
                d.actual_taken,
                d.predicted_taken,
                d.checkpoint,
                d.actual_target,
            )
        };
        self.stats.iew.exec_branches.inc();
        {
            let fetched_at = self.inst_of(seq).fetch_cycle;
            self.stats
                .iew
                .resolution_delay
                .0
                .record(self.cycle.saturating_sub(fetched_at) as f64);
        }

        match inst {
            Inst::Branch { .. } => {
                self.bp.update(pc, taken, pred_taken, &cp);
                self.stats.bpred.updates.inc();
                if mispredict {
                    self.stats.bpred.cond_incorrect.inc();
                    if pred_taken {
                        self.stats.iew.predicted_taken_incorrect.inc();
                    } else {
                        self.stats.iew.predicted_not_taken_incorrect.inc();
                    }
                }
                if taken {
                    self.btb.update(pc, actual_target);
                }
            }
            Inst::JumpInd { .. } | Inst::CallInd { .. } => {
                if mispredict {
                    self.stats.bpred.indirect_mispredicted.inc();
                }
                self.btb.update(pc, actual_target);
            }
            Inst::Ret if mispredict => {
                self.stats.bpred.ras_incorrect.inc();
            }
            Inst::Jump { .. } | Inst::Call { .. } => {
                self.btb.update(pc, actual_target);
            }
            _ => {}
        }

        if mispredict {
            {
                let d = self.inst_mut(seq);
                d.mispredicted = true;
            }
            self.stats.iew.branch_mispredicts.inc();
            // Repair speculative predictor state.
            if matches!(inst, Inst::Branch { .. }) {
                // bp.update already repaired the GHR.
            } else {
                self.bp.restore_ghr(cp.ghr);
            }
            self.ras.restore(cp.ras_tos, cp.ras_top);
            // Re-apply this instruction's own RAS operation.
            match inst {
                Inst::Call { .. } | Inst::CallInd { .. } => self.ras.push(pc + 1),
                Inst::Ret => {
                    let _ = self.ras.pop();
                }
                _ => {}
            }
            self.squash_after(seq, Some(actual_target));
        }
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    fn fu_pool(&self, class: OpClass) -> usize {
        match class {
            OpClass::IntAlu | OpClass::NoOpClass => 0,
            OpClass::IntMult | OpClass::IntDiv => 1,
            OpClass::FloatAdd
            | OpClass::FloatMult
            | OpClass::FloatDiv
            | OpClass::FloatSqrt
            | OpClass::FloatCvt => 2,
            OpClass::SimdAdd | OpClass::SimdMult | OpClass::SimdCvt => 3,
            OpClass::MemRead
            | OpClass::MemWrite
            | OpClass::FloatMemRead
            | OpClass::FloatMemWrite => 4,
        }
    }

    fn exec_latency(&self, class: OpClass) -> u64 {
        match class {
            OpClass::NoOpClass => 1,
            OpClass::IntAlu => 1,
            OpClass::IntMult => 3,
            OpClass::IntDiv => 12,
            OpClass::FloatAdd => 4,
            OpClass::FloatMult => 5,
            OpClass::FloatDiv => 12,
            OpClass::FloatSqrt => 16,
            OpClass::FloatCvt => 3,
            OpClass::SimdAdd | OpClass::SimdMult | OpClass::SimdCvt => 2,
            OpClass::MemRead | OpClass::FloatMemRead => 1,
            OpClass::MemWrite | OpClass::FloatMemWrite => 1,
        }
    }

    fn issue(&mut self) {
        let mut fu_avail = [
            self.cfg.int_alu_units,
            self.cfg.int_mult_units,
            self.cfg.fp_units,
            self.cfg.simd_units,
            self.cfg.mem_ports,
        ];
        let mut issued_this_cycle = 0usize;
        let mut violation: Option<(u64, usize)> = None;

        // Gather candidates (oldest first).
        let seqs: Vec<u64> = self.rob.iter().map(|d| d.seq).collect();
        for seq in seqs {
            if issued_this_cycle >= self.cfg.issue_width {
                break;
            }
            let (ready, class) = {
                let d = self.inst_of(seq);
                if !d.in_iq || d.issued || d.squashed {
                    continue;
                }
                if d.non_spec && !d.can_exec_non_spec {
                    continue;
                }
                let srcs_ready = d.srcs.iter().flatten().all(|&p| self.phys_ready[p]);
                (srcs_ready, d.inst.op_class())
            };
            if !ready {
                continue;
            }
            let pool = self.fu_pool(class);
            if class != OpClass::NoOpClass && class != OpClass::IntAlu && fu_avail[pool] == 0 {
                self.stats.iq.fu_full.inc(class);
                continue;
            }
            if matches!(
                class,
                OpClass::MemRead
                    | OpClass::MemWrite
                    | OpClass::FloatMemRead
                    | OpClass::FloatMemWrite
            ) && fu_avail[4] == 0
            {
                self.stats.iq.fu_full.inc(class);
                continue;
            }
            // Loads blocked by a saturated L1D MSHR pool reschedule.
            if self.inst_of(seq).is_load() {
                let outstanding = self
                    .rob
                    .iter()
                    .filter(|d| d.mem_outstanding && !d.squashed)
                    .count();
                if outstanding >= self.mem.l1d().config().mshrs {
                    self.stats.iew.lsq.rescheduled_loads.inc();
                    self.stats.iew.lsq.blocked_loads.inc();
                    self.stats.iew.lsq.cache_blocked.inc();
                    continue;
                }
            }

            if class != OpClass::NoOpClass {
                let pool = if matches!(
                    class,
                    OpClass::MemRead
                        | OpClass::MemWrite
                        | OpClass::FloatMemRead
                        | OpClass::FloatMemWrite
                ) {
                    4
                } else {
                    pool
                };
                if fu_avail[pool] > 0 {
                    fu_avail[pool] -= 1;
                    if fu_avail[pool] == 0 {
                        self.stats.iq.fu_busy.inc(class);
                    }
                }
            }
            issued_this_cycle += 1;
            if let Some(v) = self.execute_at_issue(seq) {
                violation = Some(v);
                break;
            }
        }

        self.stats.iq.insts_issued.add(issued_this_cycle as u64);
        self.stats
            .iq
            .issued_per_cycle
            .0
            .record(issued_this_cycle as f64);
        if issued_this_cycle == 0 {
            self.stats.iq.empty_issue_cycles.inc();
            self.stats.iew.idle_cycles.inc();
        }

        if let Some((load_seq, load_pc)) = violation {
            // Memory order violation: squash from the conflicting load
            // (the rollback point and the redirect pc MUST come from the
            // same scan, or instructions between them are silently lost).
            self.stats.iew.mem_order_violation_events.inc();
            self.stats.iew.lsq.mem_order_violation.inc();
            self.stats.iew.mem_dep.conflicting_stores.inc();
            self.stats.iew.mem_dep.conflicting_loads.inc();
            self.squash_after(load_seq - 1, Some(load_pc));
        }
    }

    /// Computes an instruction's result as it issues; returns a detected
    /// memory-order violation `(store_seq, load_pc)` if one occurred.
    fn execute_at_issue(&mut self, seq: u64) -> Option<(u64, usize)> {
        let d = self.inst_of(seq).clone();
        let v = |i: usize| -> u64 { d.srcs[i].map(|p| self.phys_regs[p]).unwrap_or(0) };
        let class = d.inst.op_class();
        let base_lat = self.exec_latency(class);
        let mut ready = self.cycle + base_lat;
        let mut result = 0u64;
        let mut eff_addr = None;
        let mut mem_size = 0u64;
        let mut fault = false;
        let mut forwarded = false;
        let mut mem_outstanding = false;
        let mut actual_taken = false;
        let mut actual_target = d.fall_through;
        let mut violation = None;
        let mut fwd_youngest_out: Option<u64> = None;

        self.stats
            .cpu
            .int_regfile_reads
            .add(d.srcs.iter().flatten().count() as u64);

        match d.inst {
            Inst::Li { imm, .. } => result = imm as u64,
            Inst::Alu { op, .. } => {
                result = alu_compute(op, v(0), v(1));
                self.stats.cpu.int_alu_accesses.inc();
            }
            Inst::AluI { op, imm, .. } => {
                result = alu_compute(op, v(0), imm as u64);
                self.stats.cpu.int_alu_accesses.inc();
            }
            Inst::Falu { op, .. } => {
                result = falu_compute(op, v(0), v(1));
                self.stats.cpu.fp_alu_accesses.inc();
            }
            Inst::Load { offset, width, .. } => {
                let addr = v(0).wrapping_add(offset as u64);
                eff_addr = Some(addr);
                mem_size = width.bytes();
                self.stats.iew.mem_dep.lookups.inc();
                let (tlb_lat, tlb_miss) = self.dtlb.access(addr);
                self.stats.dtb.rd_accesses.inc();
                if tlb_miss {
                    self.stats.dtb.rd_misses.inc();
                    self.stats.dtb.walk_cycles.add(tlb_lat);
                } else {
                    self.stats.dtb.rd_hits.inc();
                }
                fault = addr >= KERNEL_SPACE_BASE || self.program.is_kernel_addr(addr);
                // Store-to-load forwarding: merge, byte by byte, the
                // youngest older in-flight store covering each loaded byte
                // over the memory image (uncommitted stores are only
                // visible in the store queue, not in memory).
                let mut any_fwd = false;
                let mut all_fwd = true;
                let mut fwd_oldest: Option<u64> = None;
                let mut bytes = [0u8; 8];
                for (k, byte) in bytes.iter_mut().enumerate().take(mem_size as usize) {
                    let b_addr = addr + k as u64;
                    let src = self
                        .rob
                        .iter()
                        .filter(|s| {
                            s.seq < seq
                                && s.is_store()
                                && s.issued
                                && !s.squashed
                                && s.eff_addr
                                    .is_some_and(|sa| sa <= b_addr && b_addr < sa + s.mem_size)
                        })
                        .max_by_key(|s| s.seq);
                    match src {
                        Some(st) => {
                            let sa = st.eff_addr.expect("checked");
                            *byte = (st.result >> ((b_addr - sa) * 8)) as u8;
                            any_fwd = true;
                            fwd_oldest = Some(fwd_oldest.map_or(st.seq, |f: u64| f.min(st.seq)));
                        }
                        None => {
                            *byte = self.mem.memory().read_byte(b_addr);
                            all_fwd = false;
                        }
                    }
                }
                // The violation-check exemption is only sound when EVERY
                // byte came from the store queue; the oldest contributor
                // bounds which later-resolving stores can be ignored.
                fwd_youngest_out = if all_fwd { fwd_oldest } else { None };
                if any_fwd {
                    result = bytes[..mem_size as usize]
                        .iter()
                        .enumerate()
                        .fold(0u64, |v, (k, &b)| v | (b as u64) << (8 * k));
                    if all_fwd {
                        // Cleanly satisfied by the store queue.
                        forwarded = true;
                        ready = self.cycle + 2 + tlb_lat;
                        self.stats.iew.lsq.forw_loads.inc();
                        self.stats.iew.lsq.forw_distance.0.record(1.0);
                    } else {
                        // Partial overlap: merge and replay more slowly.
                        ready = self.cycle + 10 + tlb_lat;
                        self.stats.iew.lsq.rescheduled_loads.inc();
                    }
                } else {
                    let res = self.mem.load(addr, mem_size, self.cycle + tlb_lat);
                    result = res.value;
                    ready = self.cycle + base_lat + tlb_lat + res.latency;
                    mem_outstanding = res.outcome != AccessOutcome::L1Hit;
                    self.stats
                        .iew
                        .lsq
                        .load_latency
                        .0
                        .record((ready - self.cycle) as f64);
                }
            }
            Inst::Store { offset, width, .. } => {
                let addr = v(0).wrapping_add(offset as u64);
                eff_addr = Some(addr);
                mem_size = width.bytes();
                result = v(1); // store data
                let (tlb_lat, tlb_miss) = self.dtlb.access(addr);
                self.stats.dtb.wr_accesses.inc();
                if tlb_miss {
                    self.stats.dtb.wr_misses.inc();
                    self.stats.dtb.walk_cycles.add(tlb_lat);
                } else {
                    self.stats.dtb.wr_hits.inc();
                }
                ready = self.cycle + base_lat + tlb_lat;
                fault = addr >= KERNEL_SPACE_BASE || self.program.is_kernel_addr(addr);
                // Memory-order violation: a younger load already executed
                // against this address.
                let conflict = self
                    .rob
                    .iter()
                    .filter(|l| {
                        l.seq > seq
                            && l.is_load()
                            && l.issued
                            && !l.squashed
                            // A load whose bytes all came from a store
                            // younger than this one cannot have read stale
                            // data; anything else (memory bytes, or bytes
                            // from an older store) must replay.
                            && l.fwd_youngest_seq.is_none_or(|f| f < seq)
                            && l.eff_addr.is_some_and(|la| {
                                la < addr + mem_size && addr < la + l.mem_size
                            })
                    })
                    .map(|l| (l.seq, l.pc))
                    .min();
                if let Some((lseq, lpc)) = conflict {
                    violation = Some((lseq, lpc));
                }
            }
            Inst::Branch { cond, .. } => {
                actual_taken = cond.eval(v(0), v(1));
                actual_target = if actual_taken {
                    branch_target(d.inst)
                } else {
                    d.fall_through
                };
            }
            Inst::Jump { target } => {
                actual_taken = true;
                actual_target = target;
            }
            Inst::JumpInd { .. } => {
                actual_taken = true;
                actual_target = v(0) as usize;
                ready = self.cycle + 3; // indirect target resolution
            }
            Inst::Call { target } => {
                actual_taken = true;
                actual_target = target;
            }
            Inst::CallInd { .. } => {
                actual_taken = true;
                actual_target = v(0) as usize;
                ready = self.cycle + 3;
            }
            Inst::Ret => {
                actual_taken = true;
                actual_target = d.actual_target; // resolved at rename
                ready = self.cycle + 8; // return address stack-memory read
            }
            Inst::SetRet { .. } => {
                // Effect applied at rename; execution is a no-op.
            }
            Inst::Flush { offset, .. } => {
                let addr = v(0).wrapping_add(offset as u64);
                eff_addr = Some(addr);
                let lat = self.mem.flush_line(addr, self.cycle);
                self.stats.iew.flush_latency.0.record(lat as f64);
                ready = self.cycle + lat;
            }
            Inst::Fence => {
                ready = self.cycle + 1;
            }
            Inst::Membar => {
                ready = self.cycle + self.cfg.membar_drain;
            }
            Inst::RdCycle { .. } => {
                result = self.cycle;
                self.stats.cpu.misc_regfile_reads.inc();
                self.stats.cpu.misc_regfile_writes.inc();
            }
            Inst::Mark(_) | Inst::Nop | Inst::Halt => {}
        }

        {
            let now = self.cycle;
            let di = self.inst_mut(seq);
            di.issued = true;
            di.issue_cycle = now;
            di.in_iq = false;
            di.result = result;
            di.ready_cycle = ready;
            di.eff_addr = eff_addr;
            di.mem_size = mem_size;
            di.fault = fault;
            di.forwarded = forwarded;
            di.fwd_youngest_seq = fwd_youngest_out;
            di.mem_outstanding = mem_outstanding;
            di.actual_taken = actual_taken;
            if !matches!(di.inst, Inst::Ret) {
                di.actual_target = actual_target;
            }
        }
        self.iq_used -= 1;
        self.stats.iq.issued_inst_type.inc(class);
        let dispatch = self.inst_of(seq).dispatch_cycle;
        self.stats
            .iq
            .issue_delay
            .0
            .record(self.cycle.saturating_sub(dispatch) as f64);
        self.stats.iq.power.dynamic_energy.add(1.1);
        violation
    }

    // ------------------------------------------------------------------
    // Rename / dispatch
    // ------------------------------------------------------------------

    fn rename_dispatch(&mut self) {
        let mut renamed = 0usize;
        while renamed < self.cfg.rename_width {
            let Some(front) = self.decode_q.front() else {
                if renamed == 0 {
                    self.stats.rename.idle_cycles.inc();
                }
                break;
            };
            let inst = front.inst;

            // Serializing instructions drain the window first.
            if inst.is_serializing() && !self.rob.is_empty() {
                self.stats.rename.serialize_stall_cycles.inc();
                self.stats.fetch.pending_drain_cycles.inc();
                break;
            }

            // Resource checks.
            if self.rob.len() >= self.cfg.rob_entries {
                self.stats.rename.rob_full_events.inc();
                self.stats.rename.block_cycles.inc();
                break;
            }
            if self.iq_used >= self.cfg.iq_entries {
                self.stats.rename.iq_full_events.inc();
                self.stats.rename.block_cycles.inc();
                break;
            }
            let is_load = matches!(inst, Inst::Load { .. });
            let is_store = matches!(inst, Inst::Store { .. });
            if is_load && self.lq_used >= self.cfg.lq_entries {
                self.stats.rename.lq_full_events.inc();
                self.stats.rename.block_cycles.inc();
                break;
            }
            if is_store && self.sq_used >= self.cfg.sq_entries {
                self.stats.rename.sq_full_events.inc();
                self.stats.rename.block_cycles.inc();
                break;
            }
            if inst.dest().is_some() && self.free_list.is_empty() {
                self.stats.rename.full_registers_events.inc();
                self.stats.rename.block_cycles.inc();
                break;
            }

            let mut d = self.decode_q.pop_front().expect("checked");
            d.dispatch_cycle = self.cycle;
            renamed += 1;
            self.stats.rename.renamed_insts.inc();
            self.stats.rename.power.dynamic_energy.add(0.9);
            self.stats.rob.writes.inc();

            if inst.is_serializing() {
                if matches!(inst, Inst::RdCycle { .. }) {
                    self.stats.rename.temp_serializing_insts.inc();
                } else {
                    self.stats.rename.serializing_insts.inc();
                }
            }

            // Rename sources.
            let (s0, s1) = inst.sources();
            for (slot, src) in [s0, s1].into_iter().enumerate() {
                if let Some(r) = src {
                    d.srcs[slot] = Some(self.map_table[r.index()]);
                    self.stats.rename.rename_lookups.inc();
                }
            }
            // Rename destination.
            if let Some(rd) = inst.dest() {
                let new_phys = self.free_list.pop_front().expect("checked non-empty");
                let old_phys = self.map_table[rd.index()];
                self.history.push_back(HistEntry {
                    seq: d.seq,
                    arch: rd.index(),
                    new_phys,
                    old_phys,
                });
                self.map_table[rd.index()] = new_phys;
                self.phys_ready[new_phys] = false;
                d.dest_phys = Some(new_phys);
                d.old_phys = Some(old_phys);
                self.stats.rename.renamed_operands.inc();
            }

            // Architectural call-stack maintenance.
            match inst {
                Inst::Call { .. } | Inst::CallInd { .. } => {
                    self.call_stack.push(d.fall_through);
                    self.call_hist.push_back((d.seq, CallOp::Push));
                }
                Inst::Ret => {
                    let target = self.call_stack.pop().unwrap_or(d.fall_through);
                    self.call_hist.push_back((d.seq, CallOp::Pop(target)));
                    d.actual_target = target;
                }
                Inst::SetRet { base } => {
                    // Serialized: the register is architecturally visible.
                    let val = self.phys_regs[self.map_table[base.index()]] as usize;
                    if let Some(top) = self.call_stack.last_mut() {
                        let old = *top;
                        *top = val;
                        self.call_hist.push_back((d.seq, CallOp::Replace(old)));
                    }
                }
                _ => {}
            }

            // Dispatch.
            d.in_iq = true;
            self.iq_used += 1;
            self.stats.iq.insts_added.inc();
            self.stats.iew.dispatched_insts.inc();
            if inst.is_non_speculative() {
                d.non_spec = true;
                self.stats.iq.non_spec_insts_added.inc();
                self.stats.iew.disp_non_spec_insts.inc();
            }
            if is_load {
                self.lq_used += 1;
                self.stats.iew.disp_load_insts.inc();
                self.stats.iew.lsq.inserted_loads.inc();
                self.stats.iew.mem_dep.inserted_loads.inc();
            }
            if is_store {
                self.sq_used += 1;
                self.stats.iew.disp_store_insts.inc();
                self.stats.iew.lsq.inserted_stores.inc();
                self.stats.iew.mem_dep.inserted_stores.inc();
            }
            if matches!(inst, Inst::Membar) {
                self.membars_in_flight += 1;
            }

            self.rob.push_back(d);
        }
        if renamed > 0 {
            self.stats.rename.run_cycles.inc();
        }
    }

    // ------------------------------------------------------------------
    // Decode
    // ------------------------------------------------------------------

    fn decode(&mut self) {
        let mut decoded = 0;
        while decoded < self.cfg.decode_width
            && !self.fetch_q.is_empty()
            && self.decode_q.len() < self.cfg.decode_queue
        {
            let d = self.fetch_q.pop_front().expect("checked non-empty");
            if matches!(d.inst, Inst::Jump { .. } | Inst::Call { .. }) {
                self.stats.decode.branch_resolved.inc();
            }
            self.decode_q.push_back(d);
            decoded += 1;
            self.stats.decode.decoded_insts.inc();
            self.stats.decode.power.dynamic_energy.add(0.5);
        }
        if decoded > 0 {
            self.stats.decode.run_cycles.inc();
        } else if self.fetch_q.is_empty() {
            self.stats.decode.idle_cycles.inc();
        } else {
            self.stats.decode.blocked_cycles.inc();
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn fetch(&mut self) {
        if self.halted || self.fetch_stopped {
            self.stats.fetch.idle_cycles.inc();
            return;
        }
        if self.cycle < self.trap_pending_until {
            self.stats.fetch.pending_trap_stall_cycles.inc();
            return;
        }
        if self.cycle < self.fetch_resume_at {
            self.stats.fetch.squash_cycles.inc();
            return;
        }
        if self.membars_in_flight > 0 {
            self.stats.fetch.pending_quiesce_stall_cycles.inc();
            self.stats.cpu.quiesce_cycles.inc();
            return;
        }
        if self.icache_outstanding {
            if self.cycle < self.icache_stall_until {
                self.stats.fetch.icache_stall_cycles.inc();
                return;
            }
            self.icache_outstanding = false;
        }
        if self.fetch_q.len() >= self.cfg.fetch_queue {
            if self.decode_q.len() >= self.cfg.decode_queue {
                self.stats.fetch.misc_stall_cycles.inc();
            } else {
                self.stats.fetch.blocked_cycles.inc();
            }
            return;
        }

        let mut fetched = 0usize;
        while fetched < self.cfg.fetch_width && self.fetch_q.len() < self.cfg.fetch_queue {
            // I-cache access on line crossings.
            let byte_addr = self.cfg.icode_base + self.pc as u64 * self.cfg.inst_bytes;
            let line = byte_addr / 64;
            if self.current_fetch_line != Some(line) {
                let (itlb_lat, itlb_miss) = self.itlb.access(byte_addr);
                self.stats.itb.rd_accesses.inc();
                if itlb_miss {
                    self.stats.itb.rd_misses.inc();
                    self.stats.itb.walk_cycles.add(itlb_lat);
                } else {
                    self.stats.itb.rd_hits.inc();
                }
                let (lat, outcome) = self.mem.fetch(byte_addr, self.cycle);
                self.current_fetch_line = Some(line);
                self.stats.fetch.cache_lines.inc();
                if outcome != AccessOutcome::L1Hit || itlb_lat > 0 {
                    self.icache_outstanding = true;
                    self.icache_stall_until = self.cycle + lat + itlb_lat;
                    break;
                }
            }

            let inst = self.program.fetch(self.pc).unwrap_or(Inst::Halt);
            let mut d = DynInst::new(self.next_seq, self.pc, inst);
            d.fetch_cycle = self.cycle;
            self.next_seq += 1;
            self.stats.fetch.insts.inc();
            self.stats.fetch.power.dynamic_energy.add(0.8);
            match inst {
                Inst::Load { .. } => self.stats.cpu.num_load_insts.inc(),
                Inst::Store { .. } => self.stats.cpu.num_store_insts.inc(),
                i if i.is_control() => self.stats.cpu.num_branches.inc(),
                _ => {}
            }
            if let Some(k) = ctrl_kind(inst) {
                self.stats.fetch.branch_kind.inc(k);
                self.stats.bpred.lookup_kind.inc(k);
            }
            fetched += 1;

            // Branch prediction.
            let (ras_tos, ras_top) = self.ras.checkpoint();
            let mut next_pc = self.pc + 1;
            if inst.is_control() {
                self.stats.fetch.branches.inc();
                self.stats.bpred.lookups.inc();
                match inst {
                    Inst::Branch { target, .. } => {
                        let (mut taken, mut cp) = self.bp.predict(self.pc);
                        if self.noise_flip() {
                            taken = !taken;
                        }
                        cp.ras_tos = ras_tos;
                        cp.ras_top = ras_top;
                        d.checkpoint = cp;
                        d.predicted_taken = taken;
                        self.stats.bpred.cond_predicted.inc();
                        self.stats.bpred.btb_lookups.inc();
                        if self.btb.lookup(self.pc).is_some() {
                            self.stats.bpred.btb_hits.inc();
                        }
                        if taken {
                            self.stats.fetch.predicted_branches.inc();
                            next_pc = target;
                        }
                    }
                    Inst::Jump { target } => {
                        d.predicted_taken = true;
                        d.checkpoint = self.make_checkpoint(ras_tos, ras_top);
                        next_pc = target;
                    }
                    Inst::Call { target } => {
                        d.predicted_taken = true;
                        d.checkpoint = self.make_checkpoint(ras_tos, ras_top);
                        self.ras.push(self.pc + 1);
                        next_pc = target;
                    }
                    Inst::JumpInd { .. } | Inst::CallInd { .. } => {
                        d.predicted_taken = true;
                        d.checkpoint = self.make_checkpoint(ras_tos, ras_top);
                        self.stats.bpred.indirect_lookups.inc();
                        self.stats.bpred.btb_lookups.inc();
                        if let Some(t) = self.btb.lookup(self.pc) {
                            self.stats.bpred.indirect_hits.inc();
                            self.stats.bpred.btb_hits.inc();
                            next_pc = t;
                        }
                        if matches!(inst, Inst::CallInd { .. }) {
                            self.ras.push(self.pc + 1);
                        }
                    }
                    Inst::Ret => {
                        d.predicted_taken = true;
                        d.checkpoint = self.make_checkpoint(ras_tos, ras_top);
                        self.stats.bpred.ras_used.inc();
                        next_pc = self.ras.pop();
                    }
                    _ => unreachable!("is_control covers all control insts"),
                }
                d.predicted_target = next_pc;
            }

            self.pc = next_pc;
            let is_halt = matches!(inst, Inst::Halt);
            self.fetch_q.push_back(d);
            if is_halt {
                self.fetch_stopped = true;
                self.stats.cpu.num_fetch_suspends.inc();
                break;
            }
        }
        self.stats.fetch.nisn_dist.0.record(fetched as f64);
        if fetched > 0 {
            self.stats.fetch.cycles.inc();
        }
    }

    fn make_checkpoint(&self, ras_tos: usize, ras_top: usize) -> PredCheckpoint {
        PredCheckpoint {
            ghr: self.bp.ghr(),
            ras_tos,
            ras_top,
            local_idx: 0,
            global_idx: 0,
            choice_idx: 0,
            used_global: false,
        }
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    /// Squashes every instruction with `seq > after`, redirecting fetch to
    /// `new_pc` (or leaving the trap redirect to the caller when `None`).
    fn squash_after(&mut self, after: u64, new_pc: Option<usize>) {
        self.stats.cpu.squash_events.inc();

        // Wrong-path entries still in the front-end queues.
        let dropped = self.fetch_q.len() + self.decode_q.len();
        self.fetch_q.clear();
        self.decode_q.clear();
        self.stats.decode.squashed_insts.add(dropped as u64);

        // Walk the ROB from the back.
        while let Some(back) = self.rob.back() {
            if back.seq <= after {
                break;
            }
            let d = self.rob.pop_back().expect("checked non-empty");
            self.stats.commit.squashed_insts.inc();
            self.stats.iq.squashed_insts_examined.inc();
            self.stats
                .iq
                .squashed_operands_examined
                .add(d.srcs.iter().flatten().count() as u64);
            if d.in_iq {
                self.iq_used -= 1;
                if d.non_spec {
                    self.stats.iq.squashed_non_spec_removed.inc();
                }
            }
            if d.issued && !d.executed {
                self.stats.iq.squashed_insts_issued.inc();
            }
            if d.executed || d.issued {
                self.stats.iew.exec_squashed_insts.inc();
            } else {
                self.stats.iew.disp_squashed_insts.inc();
            }
            if d.is_load() {
                self.lq_used -= 1;
                self.stats.iew.lsq.squashed_loads.inc();
                if d.mem_outstanding {
                    self.stats.iew.lsq.ignored_responses.inc();
                }
            }
            if d.is_store() {
                self.sq_used -= 1;
                self.stats.iew.lsq.squashed_stores.inc();
            }
            if matches!(d.inst, Inst::Membar) {
                self.membars_in_flight -= 1;
            }
        }

        // Undo rename mappings.
        while let Some(h) = self.history.back() {
            if h.seq <= after {
                break;
            }
            let h = self.history.pop_back().expect("checked");
            self.map_table[h.arch] = h.old_phys;
            self.free_list.push_front(h.new_phys);
            self.stats.rename.undone_maps.inc();
        }

        // Undo call-stack operations.
        while let Some(&(seq, op)) = self.call_hist.back() {
            if seq <= after {
                break;
            }
            self.call_hist.pop_back();
            match op {
                CallOp::Push => {
                    self.call_stack.pop();
                }
                CallOp::Pop(v) => self.call_stack.push(v),
                CallOp::Replace(old) => {
                    if let Some(top) = self.call_stack.last_mut() {
                        *top = old;
                    }
                }
            }
        }

        // Front-end redirect.
        if self.icache_outstanding {
            self.stats.fetch.icache_squashes.inc();
            self.icache_outstanding = false;
        }
        self.current_fetch_line = None;
        self.fetch_stopped = false;
        if let Some(pc) = new_pc {
            self.pc = pc;
        }
        self.fetch_resume_at = self.cycle + self.cfg.squash_penalty;
        self.stats.decode.squash_cycles.add(self.cfg.squash_penalty);
        self.stats.rename.squash_cycles.add(self.cfg.squash_penalty);
        self.stats.iew.squash_cycles.add(self.cfg.squash_penalty);
        self.stats.iew.block_cycles.inc();
    }

    // ------------------------------------------------------------------
    // Housekeeping
    // ------------------------------------------------------------------

    fn end_of_cycle(&mut self) {
        self.stats.cpu.num_cycles.inc();
        self.stats
            .fetch
            .queue_occupancy
            .0
            .record(self.fetch_q.len() as f64);
        self.stats
            .decode
            .queue_occupancy
            .0
            .record(self.decode_q.len() as f64);
        for e in [
            &mut self.stats.fetch.power,
            &mut self.stats.decode.power,
            &mut self.stats.rename.power,
            &mut self.stats.iq.power,
            &mut self.stats.iew.power,
            &mut self.stats.commit.power,
        ] {
            e.static_energy.add(0.2);
        }
        self.stats.rob.occupancy.0.record(self.rob.len() as f64);
        if let Some(head) = self.rob.front() {
            self.stats
                .rob
                .head_age
                .0
                .record(self.cycle.saturating_sub(head.dispatch_cycle) as f64);
            self.stats.cpu.busy_cycles.inc();
        } else {
            self.stats.cpu.idle_cycles.inc();
        }
        self.stats.iq.occupancy.0.record(self.iq_used as f64);
        self.stats
            .iew
            .lsq
            .lq_occupancy
            .0
            .record(self.lq_used as f64);
        self.stats
            .iew
            .lsq
            .sq_occupancy
            .0
            .record(self.sq_used as f64);
        self.cycle += 1;
    }

    fn inst_of(&self, seq: u64) -> &DynInst {
        let i = self
            .rob
            .binary_search_by_key(&seq, |d| d.seq)
            .expect("seq in rob");
        &self.rob[i]
    }

    fn inst_mut(&mut self, seq: u64) -> &mut DynInst {
        let i = self
            .rob
            .binary_search_by_key(&seq, |d| d.seq)
            .expect("seq in rob");
        &mut self.rob[i]
    }
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("program", &self.program.name())
            .field("cycle", &self.cycle)
            .field("committed", &self.committed)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl StatGroup for Core {
    fn visit(&self, prefix: &str, v: &mut dyn StatVisitor) {
        self.stats.visit(prefix, v);
        self.mem.visit(prefix, v);
    }
}

fn ctrl_kind(inst: Inst) -> Option<CtrlKind> {
    match inst {
        Inst::Branch { .. } => Some(CtrlKind::CondBranch),
        Inst::Jump { .. } => Some(CtrlKind::Jump),
        Inst::JumpInd { .. } => Some(CtrlKind::JumpIndirect),
        Inst::Call { .. } => Some(CtrlKind::Call),
        Inst::CallInd { .. } => Some(CtrlKind::CallIndirect),
        Inst::Ret => Some(CtrlKind::Return),
        _ => None,
    }
}

fn branch_target(inst: Inst) -> usize {
    match inst {
        Inst::Branch { target, .. } => target,
        _ => unreachable!("only conditional branches"),
    }
}

fn alu_compute(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                u64::MAX
            } else {
                ((a as i64).wrapping_div(b as i64)) as u64
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                ((a as i64).wrapping_rem(b as i64)) as u64
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32 & 63),
        AluOp::Shr => a.wrapping_shr(b as u32 & 63),
        AluOp::Sar => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
    }
}

fn falu_compute(op: FaluOp, a: u64, b: u64) -> u64 {
    let fa = f64::from_bits(a);
    let fb = f64::from_bits(b);
    match op {
        FaluOp::FAdd => (fa + fb).to_bits(),
        FaluOp::FSub => (fa - fb).to_bits(),
        FaluOp::FMul => (fa * fb).to_bits(),
        FaluOp::FDiv => (fa / fb).to_bits(),
        FaluOp::FSqrt => fa.abs().sqrt().to_bits(),
        FaluOp::FCvtIf => (a as i64 as f64).to_bits(),
        FaluOp::FCvtFi => fa as i64 as u64,
        FaluOp::VAdd | FaluOp::VMul | FaluOp::VCvt => {
            let mut out = 0u64;
            for lane in 0..4 {
                let la = (a >> (16 * lane)) as u16;
                let lb = (b >> (16 * lane)) as u16;
                let r = match op {
                    FaluOp::VAdd => la.wrapping_add(lb),
                    FaluOp::VMul => la.wrapping_mul(lb),
                    _ => la.min(255),
                };
                out |= (r as u64) << (16 * lane);
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_isa::Assembler;

    fn run_program(a: Assembler, max: u64) -> Core {
        let p = a.finish().expect("assembles");
        let mut core = Core::new(CoreConfig::default(), p);
        core.run(max);
        core
    }

    #[test]
    fn straight_line_arithmetic_commits() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 5);
        a.li(Reg::R2, 7);
        a.add(Reg::R3, Reg::R1, Reg::R2);
        a.mul(Reg::R4, Reg::R3, Reg::R3);
        a.halt();
        let core = run_program(a, 100);
        assert!(core.halted());
        assert_eq!(core.reg(Reg::R3), 12);
        assert_eq!(core.reg(Reg::R4), 144);
    }

    #[test]
    fn loop_with_branches_computes_sum() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 0); // sum
        a.li(Reg::R2, 1); // i
        a.li(Reg::R3, 11); // limit
        let top = a.label();
        a.bind(top);
        a.add(Reg::R1, Reg::R1, Reg::R2);
        a.addi(Reg::R2, Reg::R2, 1);
        a.blt(Reg::R2, Reg::R3, top);
        a.halt();
        let core = run_program(a, 1000);
        assert!(core.halted());
        assert_eq!(core.reg(Reg::R1), 55);
        assert!(core.stats().commit.branches.value() >= 10);
    }

    #[test]
    fn loads_and_stores_round_trip_through_memory() {
        let mut a = Assembler::new("t");
        a.data(0x1000, vec![0u8; 64]);
        a.li(Reg::R1, 0x1000);
        a.li(Reg::R2, 0xabcd);
        a.store(Reg::R2, Reg::R1, 8);
        a.load(Reg::R3, Reg::R1, 8);
        a.halt();
        let core = run_program(a, 100);
        assert_eq!(core.reg(Reg::R3), 0xabcd);
        assert_eq!(core.mem().memory().read(0x1008, 8), 0xabcd);
    }

    #[test]
    fn store_to_load_forwarding_is_counted() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 0x2000);
        a.li(Reg::R2, 99);
        a.store(Reg::R2, Reg::R1, 0);
        a.load(Reg::R3, Reg::R1, 0);
        a.halt();
        let core = run_program(a, 100);
        assert_eq!(core.reg(Reg::R3), 99);
        assert!(core.stats().iew.lsq.forw_loads.value() >= 1);
    }

    #[test]
    fn call_and_return_execute_correctly() {
        let mut a = Assembler::new("t");
        let f = a.label();
        let end = a.label();
        a.li(Reg::R1, 1);
        a.call(f);
        a.addi(Reg::R1, Reg::R1, 10); // after return
        a.jmp(end);
        a.bind(f);
        a.addi(Reg::R1, Reg::R1, 100);
        a.ret();
        a.bind(end);
        a.halt();
        let core = run_program(a, 100);
        assert_eq!(core.reg(Reg::R1), 111);
        assert!(core.stats().commit.function_calls.value() >= 1);
    }

    #[test]
    fn mistrained_branch_speculatively_touches_cache() {
        // The essence of SpectreV1: train a bounds check, then flip it; the
        // wrong-path load must install its line in the cache.
        let mut a = Assembler::new("t");
        a.data(0x3000, vec![0u8; 8]); // in-bounds data
        let secret_line: u64 = 0x7_0000;
        a.li(Reg::R10, secret_line as i64);
        a.li(Reg::R2, 0); // index
        a.li(Reg::R3, 100); // bound (loop limit)
        let top = a.label();
        let skip = a.label();
        a.bind(top);
        // Bounds check: index < 90 → safe access. Trained taken 90 times,
        // then suddenly not.
        a.li(Reg::R4, 90);
        a.bge(Reg::R2, Reg::R4, skip); // not-taken while training
        a.li(Reg::R5, 0x3000);
        a.load(Reg::R6, Reg::R5, 0);
        a.bind(skip);
        // On the "attack" iterations the branch above is taken; fetch
        // mispredicts (trained not-taken) and speculatively runs the load
        // below the check... but this simple test only verifies
        // mispredictions occurred and the pipeline recovered.
        a.addi(Reg::R2, Reg::R2, 1);
        a.blt(Reg::R2, Reg::R3, top);
        a.load(Reg::R7, Reg::R10, 0); // architectural touch for sanity
        a.halt();
        let core = run_program(a, 10_000);
        assert!(core.halted());
        assert_eq!(core.reg(Reg::R2), 100);
        assert!(
            core.stats().iew.branch_mispredicts.value() >= 1,
            "flipping a trained branch must mispredict"
        );
        assert!(core.stats().commit.squashed_insts.value() > 0);
    }

    #[test]
    fn meltdown_load_faults_at_commit_but_forwards_speculatively() {
        let mut a = Assembler::new("t");
        a.kernel_data(KERNEL_SPACE_BASE, vec![0x42]);
        a.data(0x1000, vec![0u8; 4096]);
        let handler = a.label();
        a.on_fault(handler);
        a.li(Reg::R1, KERNEL_SPACE_BASE as i64);
        a.loadb(Reg::R2, Reg::R1, 0); // faulting kernel load
                                      // Dependent access: index into user array by the secret.
        a.shli(Reg::R3, Reg::R2, 6);
        a.li(Reg::R4, 0x1000);
        a.add(Reg::R4, Reg::R4, Reg::R3);
        a.loadb(Reg::R5, Reg::R4, 0);
        a.halt(); // never reached: fault redirects
        a.bind(handler);
        a.li(Reg::R20, 1);
        a.halt();
        let core = run_program(a, 1000);
        assert!(core.halted());
        assert_eq!(core.reg(Reg::R20), 1, "fault handler ran");
        assert_eq!(core.stats().commit.faults.value(), 1);
        // The dependent line (0x1000 + 0x42*64) was touched speculatively.
        assert!(
            core.mem().l1d().probe(0x1000 + 0x42 * 64).is_some()
                || core.mem().l2().probe(0x1000 + 0x42 * 64).is_some(),
            "Meltdown window must leave a cache footprint"
        );
    }

    #[test]
    fn rdcycle_measures_flush_timing_difference() {
        // Flush+Flush's primitive: flushing a cached line takes longer than
        // flushing an uncached one.
        let mut a = Assembler::new("t");
        a.data(0x5000, vec![1u8; 64]);
        a.li(Reg::R1, 0x5000);
        a.load(Reg::R2, Reg::R1, 0); // cache it
        a.fence();
        a.rdcycle(Reg::R10);
        a.flush(Reg::R1, 0); // flush cached line
        a.fence();
        a.rdcycle(Reg::R11);
        a.flush(Reg::R1, 0); // flush absent line
        a.fence();
        a.rdcycle(Reg::R12);
        a.halt();
        let core = run_program(a, 1000);
        let t_cached = core.reg(Reg::R11) - core.reg(Reg::R10);
        let t_absent = core.reg(Reg::R12) - core.reg(Reg::R11);
        assert!(
            t_cached > t_absent,
            "flush of cached line ({t_cached}) must take longer than absent ({t_absent})"
        );
    }

    #[test]
    fn spectre_rsb_setret_diverts_return() {
        let mut a = Assembler::new("t");
        let f = a.label();
        let gadget = a.label();
        let end = a.label();
        a.la(Reg::R9, end);
        a.call(f);
        a.bind(gadget); // fall-through after call = RAS prediction target
        a.li(Reg::R8, 777); // speculative gadget (also architectural if reached)
        a.bind(end);
        a.halt();
        a.bind(f);
        a.set_ret(Reg::R9); // replace return address with `end`
        a.ret(); // architecturally returns to end; RAS predicts gadget
        let core = run_program(a, 1000);
        assert!(core.halted());
        assert!(
            core.stats().bpred.ras_incorrect.value() >= 1,
            "tampered return address must mispredict the RAS"
        );
        assert_eq!(
            core.reg(Reg::R8),
            0,
            "gadget must not commit architecturally"
        );
    }

    #[test]
    fn serializing_rdcycle_drains_and_counts() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 1000);
        let top = a.label();
        a.bind(top);
        a.subi(Reg::R1, Reg::R1, 1);
        a.bnez(Reg::R1, top);
        a.rdcycle(Reg::R2);
        a.halt();
        let core = run_program(a, 10_000);
        assert!(core.reg(Reg::R2) > 0);
        assert!(core.stats().rename.temp_serializing_insts.value() >= 1);
    }

    #[test]
    fn membar_quiesces_fetch() {
        let mut a = Assembler::new("t");
        for _ in 0..4 {
            a.membar();
            // Enough work after each barrier that fetch is still active
            // while the membar is in flight.
            for _ in 0..24 {
                a.addi(Reg::R1, Reg::R1, 1);
            }
        }
        a.halt();
        let core = run_program(a, 100);
        assert!(core.stats().fetch.pending_quiesce_stall_cycles.value() > 0);
        assert_eq!(core.stats().commit.membars.value(), 4);
    }

    #[test]
    fn machine_exposes_the_papers_1159_statistics() {
        let mut a = Assembler::new("census");
        a.halt();
        let core = Core::new(CoreConfig::default(), a.finish().unwrap());
        let snap = uarch_stats::Snapshot::of(&core, "");
        assert_eq!(
            snap.len(),
            1159,
            "the machine must expose exactly the paper's 1159 counters"
        );
    }

    #[test]
    fn stats_snapshot_includes_core_and_memory() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 0x1000);
        a.load(Reg::R2, Reg::R1, 0);
        a.halt();
        let core = run_program(a, 100);
        let snap = uarch_stats::Snapshot::of(&core, "");
        assert!(snap.get("fetch.SquashCycles").is_some());
        assert!(snap.get("dcache.ReadReq_misses").is_some());
        assert!(snap.get("numCycles").unwrap() > 0.0);
    }
}
