//! The out-of-order core: an 8-wide, speculative, register-renaming
//! pipeline with gem5-style statistics.
//!
//! The pipeline is cycle-driven and the [`Core`] is an *orchestrator*: the
//! stages themselves live in [`crate::pipeline`] as first-class components
//! that own their architectural state and statistics. Each [`Core::step`]
//! ticks commit, execute, issue, rename/dispatch, decode and fetch for one
//! cycle, wiring them together through small typed ports (fetch→decode and
//! decode→rename queues, the issue→execute wakeup port, and the
//! [`SquashRequest`] channel into the squash unit). Speculation is real:
//! fetch follows the predictors, wrong-path instructions execute (and touch
//! the caches — the side-channel), and squash walks undo the rename map,
//! the call stack, the RAS and the global history.

use std::time::Instant;

use sim_mem::{HierarchyConfig, MemoryHierarchy};
use uarch_isa::{MarkKind, Program, Reg};
use uarch_stats::registry::ComponentId;
use uarch_stats::{SampleSink, Sampler, Schema, StatGroup, StatVisitor};

use crate::config::CoreConfig;
use crate::decoded::DecodedProgram;
use crate::error::SimError;
use crate::pipeline::commit::{CommitPorts, CommitStage};
use crate::pipeline::decode::{DecodePorts, DecodeStage};
use crate::pipeline::execute::{ExecutePorts, ExecuteStage, FuWakeup};
use crate::pipeline::fetch::{FetchPorts, FetchStage};
use crate::pipeline::issue::{IssuePorts, IssueStage};
use crate::pipeline::rename::{RenamePorts, RenameStage};
use crate::pipeline::squash::{SquashPorts, SquashUnit};
use crate::pipeline::{
    join_prefix, DecodeToRename, FetchToDecode, PipelineComponent, Predictors, RegFile,
    SquashRequest, Window,
};
use crate::stats::{
    BPredStats, CommitStats, CpuStats, DecodeStats, FetchStats, IewStats, IqStats, RenameStats,
    RobStats, TlbStats,
};

/// First byte address of the kernel half of the address space; any data
/// access at or above it faults at commit (but — Meltdown — data is still
/// forwarded speculatively).
pub const KERNEL_SPACE_BASE: u64 = 0x8000_0000;

/// A committed simulator mark (gem5 `m5ops` analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkEvent {
    /// What the workload annotated.
    pub kind: MarkKind,
    /// Committed-instruction count when the mark committed.
    pub at_inst: u64,
    /// Cycle when the mark committed.
    pub at_cycle: u64,
}

/// Outcome of a [`Core::run`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Instructions committed in total.
    pub committed: u64,
    /// Cycles simulated in total.
    pub cycles: u64,
    /// Whether the program halted.
    pub halted: bool,
    /// Wall-clock throughput of this call: committed instructions per
    /// host second (0.0 when the call committed nothing or the clock
    /// resolution swallowed it).
    pub insts_per_sec: f64,
    /// Wall-clock throughput of this call: simulated cycles per host
    /// second.
    pub sim_cycles_per_sec: f64,
}

/// A borrowed view of every statistic group of the core, assembled from
/// the stage components that own them.
///
/// Field names match the paper's component vocabulary (and the old
/// monolithic stats struct), so `core.stats().commit.branches` reads the
/// commit stage's counter regardless of which stage owns it.
#[derive(Debug, Clone, Copy)]
pub struct CoreStatsView<'a> {
    /// Fetch stage.
    pub fetch: &'a FetchStats,
    /// Decode stage.
    pub decode: &'a DecodeStats,
    /// Rename stage.
    pub rename: &'a RenameStats,
    /// Instruction queue.
    pub iq: &'a IqStats,
    /// Issue/execute/writeback (owns LSQ + memDep groups).
    pub iew: &'a IewStats,
    /// Commit stage.
    pub commit: &'a CommitStats,
    /// Reorder buffer.
    pub rob: &'a RobStats,
    /// Branch predictor.
    pub bpred: &'a BPredStats,
    /// Data TLB.
    pub dtb: &'a TlbStats,
    /// Instruction TLB.
    pub itb: &'a TlbStats,
    /// CPU-level counters.
    pub cpu: &'a CpuStats,
}

/// What a stalled commit stage would record each cycle.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CommitStall {
    /// Empty ROB.
    Idle,
    /// Head not executed yet (already authorized if non-spec).
    HeadWait {
        /// Whether the waiting head is non-speculative.
        non_spec: bool,
    },
}

/// What a stalled rename stage would record each cycle.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RenameStall {
    Idle,
    Serialize,
    RobFull,
    IqFull,
    LqFull,
    SqFull,
    RegsFull,
}

/// What a stalled fetch stage would record each cycle.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FetchStall {
    Idle,
    PendingTrap,
    SquashWait,
    Quiesce,
    ICache,
    QueueFullMisc,
    QueueFullBlocked,
}

/// A proof that every stage of a core is stalled this cycle, with the
/// per-stage classification needed to credit the exact stall statistics
/// the stepped loop would have recorded, and the earliest events that
/// could unstall anything. Produced by [`Core::stall_plan`]; consumed by
/// [`Core::credit_stall_cycles`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct StallPlan {
    commit: CommitStall,
    rename: RenameStall,
    fetch: FetchStall,
    decode_blocked: bool,
    next_completion: Option<u64>,
    fetch_wake: Option<u64>,
}

impl StallPlan {
    /// The earliest cycle at which anything can unstall: the next execute
    /// completion or a timed fetch stall expiring. Both `None` is a
    /// provable deadlock — the stepped loop would spin to its cycle cap,
    /// so the skip jumps there crediting the identical stall counters.
    pub(crate) fn wake(&self, cycle_cap: u64) -> u64 {
        match (self.next_completion, self.fetch_wake) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => cycle_cap,
        }
    }
}

/// The simulated machine: one out-of-order core plus its memory hierarchy.
///
/// The core owns the shared machine resources (instruction window, register
/// file, predictors, memory) and the stage components; each cycle it lends
/// slices of that state to the stages through their ports.
pub struct Core {
    cfg: CoreConfig,
    program: Program,
    /// The program decoded once up front; fetch stamps instructions from
    /// this cache instead of re-decoding per fetched instruction.
    decoded: DecodedProgram,
    mem: MemoryHierarchy,

    // Pipeline stages (each owns its architectural state and stats).
    fetch: FetchStage,
    decode: DecodeStage,
    rename: RenameStage,
    issue: IssueStage,
    exec: ExecuteStage,
    commit: CommitStage,
    squash: SquashUnit,

    // Shared machine resources lent to the stages each cycle.
    window: Window,
    regs: RegFile,
    pred: Predictors,
    cpu: CpuStats,

    // Inter-stage ports.
    fetch_q: FetchToDecode,
    decode_q: DecodeToRename,

    cycle: u64,
    committed: u64,
    halted: bool,
    marks: Vec<MarkEvent>,
}

impl Core {
    /// Builds a core running `program` on a default memory hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`CoreConfig::validate`]); use
    /// [`Core::try_new`] to handle configuration errors.
    pub fn new(cfg: CoreConfig, program: Program) -> Self {
        Self::try_new(cfg, program).expect("valid core configuration")
    }

    /// Builds a core with an explicit memory hierarchy configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`CoreConfig::validate`]); use
    /// [`Core::try_with_hierarchy`] to handle configuration errors.
    pub fn with_hierarchy(cfg: CoreConfig, program: Program, hcfg: HierarchyConfig) -> Self {
        Self::try_with_hierarchy(cfg, program, hcfg).expect("valid core configuration")
    }

    /// Builds a core running `program` on a default memory hierarchy,
    /// reporting configuration errors instead of panicking.
    pub fn try_new(cfg: CoreConfig, program: Program) -> Result<Self, SimError> {
        Self::try_with_hierarchy(cfg, program, HierarchyConfig::default())
    }

    /// Builds a core with an explicit memory hierarchy configuration,
    /// reporting configuration errors instead of panicking.
    pub fn try_with_hierarchy(
        cfg: CoreConfig,
        program: Program,
        hcfg: HierarchyConfig,
    ) -> Result<Self, SimError> {
        let mem = MemoryHierarchy::try_new(hcfg)?;
        Self::try_with_parts(cfg, program, mem)
    }

    /// Builds a core around an already-constructed memory hierarchy — the
    /// seam the multi-core [`Machine`](crate::machine::Machine) uses to
    /// hand every core its private L1s wired to the shared uncore. The
    /// program's data segments are installed into the hierarchy's
    /// (per-core) functional memory.
    pub fn try_with_parts(
        cfg: CoreConfig,
        program: Program,
        mut mem: MemoryHierarchy,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        for seg in program.segments() {
            mem.memory_mut().write_bytes(seg.base, &seg.data);
        }
        let decoded = DecodedProgram::new(&program);
        Ok(Self {
            fetch: FetchStage::new(&cfg),
            decode: DecodeStage::default(),
            rename: RenameStage::default(),
            issue: IssueStage::default(),
            exec: ExecuteStage::new(&cfg),
            commit: CommitStage::default(),
            squash: SquashUnit,
            window: Window::default(),
            regs: RegFile::new(cfg.phys_int_regs),
            pred: Predictors::new(&cfg),
            cpu: CpuStats::default(),
            fetch_q: FetchToDecode::default(),
            decode_q: DecodeToRename::default(),
            cycle: 0,
            committed: 0,
            halted: false,
            marks: Vec::new(),
            cfg,
            program,
            decoded,
            mem,
        })
    }

    /// The core statistics, grouped by owning pipeline component.
    pub fn stats(&self) -> CoreStatsView<'_> {
        CoreStatsView {
            fetch: &self.fetch.stats,
            decode: &self.decode.stats,
            rename: &self.rename.stats,
            iq: &self.issue.stats,
            iew: &self.exec.stats,
            commit: &self.commit.stats,
            rob: &self.commit.rob,
            bpred: &self.pred.stats,
            dtb: &self.exec.dtb,
            itb: &self.fetch.itb,
            cpu: &self.cpu,
        }
    }

    /// The memory hierarchy (caches, buses, DRAM, backing memory).
    pub fn mem(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Mutable access to the memory hierarchy (the machine's snoop drain
    /// applies back-invalidations to the private L1s through this).
    pub(crate) fn mem_mut(&mut self) -> &mut MemoryHierarchy {
        &mut self.mem
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Committed instruction count.
    pub fn committed_insts(&self) -> u64 {
        self.committed
    }

    /// Cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Whether the program has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Committed simulator marks, oldest first.
    pub fn marks(&self) -> &[MarkEvent] {
        &self.marks
    }

    /// Architectural value of register `r` (through the rename map).
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs.read_arch(r)
    }

    /// Enables branch-predictor noise injection: each conditional
    /// prediction is flipped with probability `p` — the §IV-G1 mitigation
    /// against predictor-mistraining attacks ("inject noise into the
    /// branch predictor ... so that it occasionally reverses its
    /// taken/not-taken prediction").
    pub fn set_bp_noise(&mut self, p: f64) {
        self.pred.bp_noise_ppm = (p.clamp(0.0, 1.0) * 1_000_000.0) as u32;
    }

    /// Reseeds the branch-predictor noise RNG. Seeding is deterministic:
    /// the same seed always reproduces the same flip sequence, so corpus
    /// collection can give every workload its own stable stream regardless
    /// of which thread runs it. A zero seed is remapped (xorshift sticks at
    /// zero).
    pub fn set_noise_seed(&mut self, seed: u64) {
        self.pred.noise_rng = if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        };
    }

    /// Applies CEASER-style cache index randomization (see
    /// [`MemoryHierarchy::randomize_indexing`]).
    pub fn randomize_cache_indexing(&mut self, key: u64) {
        self.mem.randomize_indexing(key);
    }

    /// Runs until the program halts or `max_insts` more instructions commit.
    /// Returns a summary of total progress.
    ///
    /// When `CoreConfig::tick_skip` is set (the default on the fast path)
    /// the run loop jumps over stretches of cycles in which every stage is
    /// provably stalled — typically the whole window waiting on a DRAM
    /// fill — crediting the exact per-cycle stall statistics the stepped
    /// loop would have recorded.
    pub fn run(&mut self, max_insts: u64) -> RunSummary {
        let started = Instant::now();
        let committed_before = self.committed;
        let cycles_before = self.cycle;
        let target = self.committed.saturating_add(max_insts);
        let mut cycle_cap = self.cycle + max_insts.saturating_mul(40) + 2_000_000;
        if let Some(budget) = self.cfg.cycle_budget {
            cycle_cap = cycle_cap.min(budget);
        }
        let skip = self.cfg.tick_skip && !self.cfg.reference_scan;
        while !self.halted && self.committed < target && self.cycle < cycle_cap {
            if skip {
                self.skip_stalled_cycles(cycle_cap);
                if self.cycle >= cycle_cap {
                    break;
                }
            }
            self.step();
        }
        let secs = started.elapsed().as_secs_f64();
        let rate = |delta: u64| if secs > 0.0 { delta as f64 / secs } else { 0.0 };
        RunSummary {
            committed: self.committed,
            cycles: self.cycle,
            halted: self.halted,
            insts_per_sec: rate(self.committed - committed_before),
            sim_cycles_per_sec: rate(self.cycle - cycles_before),
        }
    }

    /// Resolves the core's full statistic schema (all 1159 dotted names)
    /// without sampling. The returned schema shares storage with every
    /// clone, so it is cheap to hand to sinks and worker threads.
    pub fn stat_schema(&self) -> Schema {
        Schema::of(self, "")
    }

    /// Runs until the program halts or `insts` instructions commit,
    /// emitting one per-interval stat-delta row to `sink` every `interval`
    /// committed instructions — the paper's online sampling unit, observed
    /// as it happens instead of materialized after the run.
    ///
    /// The sampler's baseline is the core's *current* counters, so deltas
    /// cover exactly the instructions executed by this call. Sampling stops
    /// early if the program halts or stalls before reaching the next
    /// interval boundary (a final partial window is never emitted, matching
    /// the batch collector).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZeroSampleInterval`] when `interval` is zero,
    /// and [`SimError::CycleBudgetExceeded`] when a configured
    /// [`CoreConfig::cycle_budget`] runs out before the run halts or
    /// reaches its instruction target (the supervised-collection watchdog
    /// for runaway workloads).
    pub fn run_with_sink(
        &mut self,
        insts: u64,
        interval: u64,
        sink: &mut dyn SampleSink,
    ) -> Result<RunSummary, SimError> {
        if interval == 0 {
            return Err(SimError::ZeroSampleInterval);
        }
        let started = Instant::now();
        let committed_before = self.committed;
        let cycles_before = self.cycle;
        let mut sampler = Sampler::new(&*self, "");
        let mut next = interval;
        let mut summary = RunSummary {
            committed: self.committed,
            cycles: self.cycle,
            halted: self.halted,
            insts_per_sec: 0.0,
            sim_cycles_per_sec: 0.0,
        };
        let mut cut_short = false;
        while next <= insts {
            summary = self.run(next - self.committed_insts());
            if self.halted() || self.committed_insts() < next {
                // Program ended, stalled, or hit the watchdog.
                cut_short = !self.halted();
                break;
            }
            sampler.sample_into(&*self, self.committed_insts(), sink);
            next += interval;
        }
        if let Some(budget) = self.cfg.cycle_budget {
            if cut_short && self.cycle >= budget {
                return Err(SimError::CycleBudgetExceeded {
                    budget,
                    cycles: self.cycle,
                    committed: self.committed,
                });
            }
        }
        // Per-chunk rates from the inner `run` calls exclude sampling
        // overhead; report whole-call throughput instead.
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 {
            summary.insts_per_sec = (self.committed - committed_before) as f64 / secs;
            summary.sim_cycles_per_sec = (self.cycle - cycles_before) as f64 / secs;
        }
        Ok(summary)
    }

    /// Advances the machine one cycle.
    ///
    /// Stages tick oldest-first (commit → execute → issue → rename →
    /// decode → fetch), exactly as the monolithic core sequenced them. A
    /// stage that requests a squash has it applied by the squash unit
    /// before the next stage runs; a trap riding on a commit-stage squash
    /// is delivered to fetch right after the walk.
    pub fn step(&mut self) {
        let req = self.commit.tick(CommitPorts {
            cfg: &self.cfg,
            program: &self.program,
            mem: &mut self.mem,
            window: &mut self.window,
            regs: &mut self.regs,
            rename: &mut self.rename,
            iew_stats: &mut self.exec.stats,
            cpu: &mut self.cpu,
            cycle: self.cycle,
            committed: &mut self.committed,
            halted: &mut self.halted,
            marks: &mut self.marks,
        });
        if let Some(req) = req {
            self.apply_squash(&req);
        }

        let req = self.exec.tick(ExecutePorts {
            window: &mut self.window,
            regs: &mut self.regs,
            pred: &mut self.pred,
            iq_stats: &mut self.issue.stats,
            cpu: &mut self.cpu,
            cycle: self.cycle,
            reference_scan: self.cfg.reference_scan,
        });
        if let Some(req) = req {
            self.apply_squash(&req);
        }

        let req = self.issue.tick(IssuePorts {
            exec: &mut self.exec,
            wake: FuWakeup {
                cfg: &self.cfg,
                program: &self.program,
                mem: &mut self.mem,
                window: &mut self.window,
                regs: &mut self.regs,
                cpu: &mut self.cpu,
                cycle: self.cycle,
            },
        });
        if let Some(req) = req {
            self.apply_squash(&req);
        }

        self.rename.tick(RenamePorts {
            cfg: &self.cfg,
            input: &mut self.decode_q,
            window: &mut self.window,
            regs: &mut self.regs,
            fetch_stats: &mut self.fetch.stats,
            iq_stats: &mut self.issue.stats,
            iew_stats: &mut self.exec.stats,
            rob_stats: &mut self.commit.rob,
            cycle: self.cycle,
        });

        self.decode.tick(DecodePorts {
            cfg: &self.cfg,
            input: &mut self.fetch_q,
            out: &mut self.decode_q,
        });

        self.fetch.tick(FetchPorts {
            cfg: &self.cfg,
            decoded: &self.decoded,
            mem: &mut self.mem,
            pred: &mut self.pred,
            cpu: &mut self.cpu,
            out: &mut self.fetch_q,
            decode_q_len: self.decode_q.len(),
            quiesce: self.window.membars_in_flight > 0,
            halted: self.halted,
            cycle: self.cycle,
        });

        self.end_of_cycle();
    }

    /// Advances the clock past cycles in which every pipeline stage is
    /// provably stalled, crediting per skipped cycle exactly the stall
    /// statistics the stepped loop would have recorded.
    ///
    /// A skip is only taken when every stage's tick would be a pure
    /// stall — same counters incremented every cycle, zero machine-state
    /// mutation. Any stage that could make progress (or perform a
    /// one-time mutation, like commit authorizing a non-speculative
    /// head) makes this a no-op and the caller falls back to `step`.
    /// The clock jumps to the earliest event that can unstall anything:
    /// the next execute completion or a timed fetch stall expiring.
    ///
    /// The analysis ([`Core::stall_plan`]) and the per-cycle crediting
    /// ([`Core::credit_stall_cycles`]) are split so a multi-core
    /// [`Machine`](crate::machine::Machine) can skip only when *every*
    /// active core is stalled, jumping all of them to the earliest wake.
    fn skip_stalled_cycles(&mut self, cycle_cap: u64) {
        if let Some(plan) = self.stall_plan() {
            let skip_to = plan.wake(cycle_cap).min(cycle_cap);
            self.credit_stall_cycles(&plan, skip_to);
        }
    }

    /// Analyzes whether every stage is provably stalled this cycle.
    /// Returns the per-stage stall classification (and wake bounds) if so,
    /// or `None` when any stage could make progress. The only mutation is
    /// the stat-neutral eviction of stale ready-set entries (the select
    /// loop removes them silently on first visit anyway).
    pub(crate) fn stall_plan(&mut self) -> Option<StallPlan> {
        // Commit: retirement must be provably stuck. An executed head
        // (committable, or a fault working through its recognition
        // timer) and a non-speculative head still awaiting its one-time
        // execution authorization both mutate state — no skip.
        let commit = match self.window.rob.front() {
            None => CommitStall::Idle,
            Some(h) if !h.executed && (!h.non_spec || h.can_exec_non_spec) => {
                CommitStall::HeadWait {
                    non_spec: h.non_spec,
                }
            }
            _ => return None,
        };

        // Execute: nothing may be due to complete this cycle.
        let next_completion = self.exec.next_completion(&self.window);
        if next_completion.is_some_and(|at| at <= self.cycle) {
            return None;
        }

        // Issue: every ready-set entry must be stale. A live entry —
        // even one blocked on a functional unit or a saturated MSHR
        // pool — records per-cycle statistics, so it vetoes the skip.
        // Dropping stale entries here is stat-neutral (the select loop
        // removes them silently on first visit); the collection is only
        // populated in the rare post-squash case, keeping the common
        // per-step check allocation-free.
        let mut stale: Vec<(usize, u64)> = Vec::new();
        for (pool, set) in self.window.ready.iter().enumerate() {
            for &seq in set {
                match self.window.find(seq) {
                    Some(d) if d.in_iq && !d.issued && !d.squashed => return None,
                    _ => stale.push((pool, seq)),
                }
            }
        }
        for (pool, seq) in stale {
            self.window.ready[pool].remove(&seq);
        }

        // Rename: the stage must stall on its very first candidate, in
        // the exact order its tick checks admission.
        let rename = match self.decode_q.0.front() {
            None => RenameStall::Idle,
            Some(front) => {
                if front.serializing && !self.window.rob.is_empty() {
                    RenameStall::Serialize
                } else if self.window.rob.len() >= self.cfg.rob_entries {
                    RenameStall::RobFull
                } else if self.window.iq_used >= self.cfg.iq_entries {
                    RenameStall::IqFull
                } else if front.load && self.window.lq_used >= self.cfg.lq_entries {
                    RenameStall::LqFull
                } else if front.store && self.window.sq_used >= self.cfg.sq_entries {
                    RenameStall::SqFull
                } else if front.arch_dest.is_some() && self.regs.free_list.is_empty() {
                    RenameStall::RegsFull
                } else {
                    return None;
                }
            }
        };

        // Decode: nothing to drain, or nowhere to put it.
        let decode_blocked = if self.fetch_q.is_empty() {
            false
        } else if self.decode_q.len() >= self.cfg.decode_queue {
            true
        } else {
            return None;
        };

        // Fetch: the stall cascade, in tick order. Timed stalls bound
        // the skip; an expired I-cache stall means fetch would resume.
        let mut fetch_wake: Option<u64> = None;
        let fetch = if self.halted || self.fetch.fetch_stopped {
            FetchStall::Idle
        } else if self.cycle < self.fetch.trap_pending_until {
            fetch_wake = Some(self.fetch.trap_pending_until);
            FetchStall::PendingTrap
        } else if self.cycle < self.fetch.fetch_resume_at {
            fetch_wake = Some(self.fetch.fetch_resume_at);
            FetchStall::SquashWait
        } else if self.window.membars_in_flight > 0 {
            FetchStall::Quiesce
        } else if self.fetch.icache_outstanding {
            if self.cycle < self.fetch.icache_stall_until {
                fetch_wake = Some(self.fetch.icache_stall_until);
                FetchStall::ICache
            } else {
                return None;
            }
        } else if self.fetch_q.len() >= self.cfg.fetch_queue {
            if self.decode_q.len() >= self.cfg.decode_queue {
                FetchStall::QueueFullMisc
            } else {
                FetchStall::QueueFullBlocked
            }
        } else {
            return None;
        };

        Some(StallPlan {
            commit,
            rename,
            fetch,
            decode_blocked,
            next_completion,
            fetch_wake,
        })
    }

    /// Credits, for every cycle up to (but excluding) `skip_to`, exactly
    /// the stall statistics the stepped loop would have recorded under
    /// `plan`, and advances the clock there.
    pub(crate) fn credit_stall_cycles(&mut self, plan: &StallPlan, skip_to: u64) {
        while self.cycle < skip_to {
            match plan.commit {
                CommitStall::Idle => self.commit.stats.idle_cycles.inc(),
                CommitStall::HeadWait { non_spec } => {
                    if non_spec {
                        self.commit.stats.non_spec_stalls.inc();
                    }
                }
            }
            self.commit.stats.committed_per_cycle.0.record(0.0);

            self.issue.stats.issued_per_cycle.0.record(0.0);
            self.issue.stats.empty_issue_cycles.inc();
            self.exec.stats.idle_cycles.inc();

            match plan.rename {
                RenameStall::Idle => self.rename.stats.idle_cycles.inc(),
                RenameStall::Serialize => {
                    self.rename.stats.serialize_stall_cycles.inc();
                    self.fetch.stats.pending_drain_cycles.inc();
                }
                RenameStall::RobFull => {
                    self.rename.stats.rob_full_events.inc();
                    self.rename.stats.block_cycles.inc();
                }
                RenameStall::IqFull => {
                    self.rename.stats.iq_full_events.inc();
                    self.rename.stats.block_cycles.inc();
                }
                RenameStall::LqFull => {
                    self.rename.stats.lq_full_events.inc();
                    self.rename.stats.block_cycles.inc();
                }
                RenameStall::SqFull => {
                    self.rename.stats.sq_full_events.inc();
                    self.rename.stats.block_cycles.inc();
                }
                RenameStall::RegsFull => {
                    self.rename.stats.full_registers_events.inc();
                    self.rename.stats.block_cycles.inc();
                }
            }

            if plan.decode_blocked {
                self.decode.stats.blocked_cycles.inc();
            } else {
                self.decode.stats.idle_cycles.inc();
            }

            match plan.fetch {
                FetchStall::Idle => self.fetch.stats.idle_cycles.inc(),
                FetchStall::PendingTrap => self.fetch.stats.pending_trap_stall_cycles.inc(),
                FetchStall::SquashWait => self.fetch.stats.squash_cycles.inc(),
                FetchStall::Quiesce => {
                    self.fetch.stats.pending_quiesce_stall_cycles.inc();
                    self.cpu.quiesce_cycles.inc();
                }
                FetchStall::ICache => self.fetch.stats.icache_stall_cycles.inc(),
                FetchStall::QueueFullMisc => self.fetch.stats.misc_stall_cycles.inc(),
                FetchStall::QueueFullBlocked => self.fetch.stats.blocked_cycles.inc(),
            }

            self.end_of_cycle();
        }
    }

    /// Applies a stage's squash request through the squash unit, then
    /// delivers any trap riding on it to fetch (squash walk first, trap
    /// redirect second — the commit stage's original ordering).
    fn apply_squash(&mut self, req: &SquashRequest) {
        let mut ports = SquashPorts {
            cfg: &self.cfg,
            window: &mut self.window,
            regs: &mut self.regs,
            fetch: &mut self.fetch,
            decode: &mut self.decode,
            rename: &mut self.rename,
            issue: &mut self.issue,
            exec: &mut self.exec,
            commit: &mut self.commit,
            cpu: &mut self.cpu,
            fetch_q: &mut self.fetch_q,
            decode_q: &mut self.decode_q,
            cycle: self.cycle,
        };
        self.squash.apply(req, &mut ports);
        if let Some(trap) = req.trap {
            let pending_until = self.cycle + self.cfg.trap_latency;
            if self.fetch.take_trap(trap.handler, pending_until) {
                self.halted = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Housekeeping
    // ------------------------------------------------------------------

    fn end_of_cycle(&mut self) {
        self.cpu.num_cycles.inc();
        self.fetch
            .stats
            .queue_occupancy
            .0
            .record(self.fetch_q.len() as f64);
        self.decode
            .stats
            .queue_occupancy
            .0
            .record(self.decode_q.len() as f64);
        for e in [
            &mut self.fetch.stats.power,
            &mut self.decode.stats.power,
            &mut self.rename.stats.power,
            &mut self.issue.stats.power,
            &mut self.exec.stats.power,
            &mut self.commit.stats.power,
        ] {
            e.static_energy.add(0.2);
        }
        self.commit
            .rob
            .occupancy
            .0
            .record(self.window.rob.len() as f64);
        if let Some(head) = self.window.rob.front() {
            self.commit
                .rob
                .head_age
                .0
                .record(self.cycle.saturating_sub(head.dispatch_cycle) as f64);
            self.cpu.busy_cycles.inc();
        } else {
            self.cpu.idle_cycles.inc();
        }
        self.issue
            .stats
            .occupancy
            .0
            .record(self.window.iq_used as f64);
        self.exec
            .stats
            .lsq
            .lq_occupancy
            .0
            .record(self.window.lq_used as f64);
        self.exec
            .stats
            .lsq
            .sq_occupancy
            .0
            .record(self.window.sq_used as f64);
        self.cycle += 1;
    }
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("program", &self.program.name())
            .field("cycle", &self.cycle)
            .field("committed", &self.committed)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl StatGroup for Core {
    fn visit(&self, prefix: &str, v: &mut dyn StatVisitor) {
        // The flat-name layout is pinned by the 1159-stat census and the
        // golden snapshot: groups appear in the legacy order (which
        // interleaves the TLBs after branchPred rather than following
        // stage ownership), with every prefix resolved through the
        // component registry.
        let p = |c: ComponentId| join_prefix(prefix, c.prefix());
        self.fetch.stats.visit(&p(ComponentId::Fetch), v);
        self.decode.stats.visit(&p(ComponentId::Decode), v);
        self.rename.stats.visit(&p(ComponentId::Rename), v);
        self.issue.stats.visit(&p(ComponentId::Iq), v);
        self.exec.stats.visit(&p(ComponentId::Iew), v);
        // gem5 (and the paper's Table I) also exposes the LSQ and memDep
        // groups at top level (`lsq.squashedLoads`, `memDep.conflictingStores`)
        // in addition to the nested `iew.lsq.thread0.*` names; emit both.
        let iew_aliases = ComponentId::Iew.alias_prefixes();
        self.exec
            .stats
            .lsq
            .visit(&join_prefix(prefix, iew_aliases[0]), v);
        self.exec
            .stats
            .mem_dep
            .visit(&join_prefix(prefix, iew_aliases[1]), v);
        self.commit.stats.visit(&p(ComponentId::Commit), v);
        self.commit.rob.visit(&p(ComponentId::Rob), v);
        self.pred.stats.visit(&p(ComponentId::BranchPred), v);
        self.exec.dtb.visit(&p(ComponentId::Dtb), v);
        self.fetch.itb.visit(&p(ComponentId::Itb), v);
        // Table I spells the data TLB both `dtb` and `dtlb`; emit the alias
        // so either name resolves (they are perfectly correlated features,
        // which is exactly the paper's replicated-feature premise).
        self.exec.dtb.visit(
            &join_prefix(prefix, ComponentId::Dtb.alias_prefixes()[0]),
            v,
        );
        self.cpu.visit(prefix, v);
        self.mem.visit(prefix, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_isa::Assembler;

    fn run_program(a: Assembler, max: u64) -> Core {
        let p = a.finish().expect("assembles");
        let mut core = Core::new(CoreConfig::default(), p);
        core.run(max);
        core
    }

    #[test]
    fn straight_line_arithmetic_commits() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 5);
        a.li(Reg::R2, 7);
        a.add(Reg::R3, Reg::R1, Reg::R2);
        a.mul(Reg::R4, Reg::R3, Reg::R3);
        a.halt();
        let core = run_program(a, 100);
        assert!(core.halted());
        assert_eq!(core.reg(Reg::R3), 12);
        assert_eq!(core.reg(Reg::R4), 144);
    }

    #[test]
    fn loop_with_branches_computes_sum() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 0); // sum
        a.li(Reg::R2, 1); // i
        a.li(Reg::R3, 11); // limit
        let top = a.label();
        a.bind(top);
        a.add(Reg::R1, Reg::R1, Reg::R2);
        a.addi(Reg::R2, Reg::R2, 1);
        a.blt(Reg::R2, Reg::R3, top);
        a.halt();
        let core = run_program(a, 1000);
        assert!(core.halted());
        assert_eq!(core.reg(Reg::R1), 55);
        assert!(core.stats().commit.branches.value() >= 10);
    }

    #[test]
    fn loads_and_stores_round_trip_through_memory() {
        let mut a = Assembler::new("t");
        a.data(0x1000, vec![0u8; 64]);
        a.li(Reg::R1, 0x1000);
        a.li(Reg::R2, 0xabcd);
        a.store(Reg::R2, Reg::R1, 8);
        a.load(Reg::R3, Reg::R1, 8);
        a.halt();
        let core = run_program(a, 100);
        assert_eq!(core.reg(Reg::R3), 0xabcd);
        assert_eq!(core.mem().memory().read(0x1008, 8), 0xabcd);
    }

    #[test]
    fn store_to_load_forwarding_is_counted() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 0x2000);
        a.li(Reg::R2, 99);
        a.store(Reg::R2, Reg::R1, 0);
        a.load(Reg::R3, Reg::R1, 0);
        a.halt();
        let core = run_program(a, 100);
        assert_eq!(core.reg(Reg::R3), 99);
        assert!(core.stats().iew.lsq.forw_loads.value() >= 1);
    }

    #[test]
    fn call_and_return_execute_correctly() {
        let mut a = Assembler::new("t");
        let f = a.label();
        let end = a.label();
        a.li(Reg::R1, 1);
        a.call(f);
        a.addi(Reg::R1, Reg::R1, 10); // after return
        a.jmp(end);
        a.bind(f);
        a.addi(Reg::R1, Reg::R1, 100);
        a.ret();
        a.bind(end);
        a.halt();
        let core = run_program(a, 100);
        assert_eq!(core.reg(Reg::R1), 111);
        assert!(core.stats().commit.function_calls.value() >= 1);
    }

    #[test]
    fn mistrained_branch_speculatively_touches_cache() {
        // The essence of SpectreV1: train a bounds check, then flip it; the
        // wrong-path load must install its line in the cache.
        let mut a = Assembler::new("t");
        a.data(0x3000, vec![0u8; 8]); // in-bounds data
        let secret_line: u64 = 0x7_0000;
        a.li(Reg::R10, secret_line as i64);
        a.li(Reg::R2, 0); // index
        a.li(Reg::R3, 100); // bound (loop limit)
        let top = a.label();
        let skip = a.label();
        a.bind(top);
        // Bounds check: index < 90 → safe access. Trained taken 90 times,
        // then suddenly not.
        a.li(Reg::R4, 90);
        a.bge(Reg::R2, Reg::R4, skip); // not-taken while training
        a.li(Reg::R5, 0x3000);
        a.load(Reg::R6, Reg::R5, 0);
        a.bind(skip);
        // On the "attack" iterations the branch above is taken; fetch
        // mispredicts (trained not-taken) and speculatively runs the load
        // below the check... but this simple test only verifies
        // mispredictions occurred and the pipeline recovered.
        a.addi(Reg::R2, Reg::R2, 1);
        a.blt(Reg::R2, Reg::R3, top);
        a.load(Reg::R7, Reg::R10, 0); // architectural touch for sanity
        a.halt();
        let core = run_program(a, 10_000);
        assert!(core.halted());
        assert_eq!(core.reg(Reg::R2), 100);
        assert!(
            core.stats().iew.branch_mispredicts.value() >= 1,
            "flipping a trained branch must mispredict"
        );
        assert!(core.stats().commit.squashed_insts.value() > 0);
    }

    #[test]
    fn meltdown_load_faults_at_commit_but_forwards_speculatively() {
        let mut a = Assembler::new("t");
        a.kernel_data(KERNEL_SPACE_BASE, vec![0x42]);
        a.data(0x1000, vec![0u8; 4096]);
        let handler = a.label();
        a.on_fault(handler);
        a.li(Reg::R1, KERNEL_SPACE_BASE as i64);
        a.loadb(Reg::R2, Reg::R1, 0); // faulting kernel load
                                      // Dependent access: index into user array by the secret.
        a.shli(Reg::R3, Reg::R2, 6);
        a.li(Reg::R4, 0x1000);
        a.add(Reg::R4, Reg::R4, Reg::R3);
        a.loadb(Reg::R5, Reg::R4, 0);
        a.halt(); // never reached: fault redirects
        a.bind(handler);
        a.li(Reg::R20, 1);
        a.halt();
        let core = run_program(a, 1000);
        assert!(core.halted());
        assert_eq!(core.reg(Reg::R20), 1, "fault handler ran");
        assert_eq!(core.stats().commit.faults.value(), 1);
        // The dependent line (0x1000 + 0x42*64) was touched speculatively.
        assert!(
            core.mem().l1d().probe(0x1000 + 0x42 * 64).is_some()
                || core.mem().l2().probe(0x1000 + 0x42 * 64).is_some(),
            "Meltdown window must leave a cache footprint"
        );
    }

    #[test]
    fn rdcycle_measures_flush_timing_difference() {
        // Flush+Flush's primitive: flushing a cached line takes longer than
        // flushing an uncached one.
        let mut a = Assembler::new("t");
        a.data(0x5000, vec![1u8; 64]);
        a.li(Reg::R1, 0x5000);
        a.load(Reg::R2, Reg::R1, 0); // cache it
        a.fence();
        a.rdcycle(Reg::R10);
        a.flush(Reg::R1, 0); // flush cached line
        a.fence();
        a.rdcycle(Reg::R11);
        a.flush(Reg::R1, 0); // flush absent line
        a.fence();
        a.rdcycle(Reg::R12);
        a.halt();
        let core = run_program(a, 1000);
        let t_cached = core.reg(Reg::R11) - core.reg(Reg::R10);
        let t_absent = core.reg(Reg::R12) - core.reg(Reg::R11);
        assert!(
            t_cached > t_absent,
            "flush of cached line ({t_cached}) must take longer than absent ({t_absent})"
        );
    }

    #[test]
    fn spectre_rsb_setret_diverts_return() {
        let mut a = Assembler::new("t");
        let f = a.label();
        let gadget = a.label();
        let end = a.label();
        a.la(Reg::R9, end);
        a.call(f);
        a.bind(gadget); // fall-through after call = RAS prediction target
        a.li(Reg::R8, 777); // speculative gadget (also architectural if reached)
        a.bind(end);
        a.halt();
        a.bind(f);
        a.set_ret(Reg::R9); // replace return address with `end`
        a.ret(); // architecturally returns to end; RAS predicts gadget
        let core = run_program(a, 1000);
        assert!(core.halted());
        assert!(
            core.stats().bpred.ras_incorrect.value() >= 1,
            "tampered return address must mispredict the RAS"
        );
        assert_eq!(
            core.reg(Reg::R8),
            0,
            "gadget must not commit architecturally"
        );
    }

    #[test]
    fn serializing_rdcycle_drains_and_counts() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 1000);
        let top = a.label();
        a.bind(top);
        a.subi(Reg::R1, Reg::R1, 1);
        a.bnez(Reg::R1, top);
        a.rdcycle(Reg::R2);
        a.halt();
        let core = run_program(a, 10_000);
        assert!(core.reg(Reg::R2) > 0);
        assert!(core.stats().rename.temp_serializing_insts.value() >= 1);
    }

    #[test]
    fn membar_quiesces_fetch() {
        let mut a = Assembler::new("t");
        for _ in 0..4 {
            a.membar();
            // Enough work after each barrier that fetch is still active
            // while the membar is in flight.
            for _ in 0..24 {
                a.addi(Reg::R1, Reg::R1, 1);
            }
        }
        a.halt();
        let core = run_program(a, 100);
        assert!(core.stats().fetch.pending_quiesce_stall_cycles.value() > 0);
        assert_eq!(core.stats().commit.membars.value(), 4);
    }

    #[test]
    fn machine_exposes_the_papers_1159_statistics() {
        let mut a = Assembler::new("census");
        a.halt();
        let core = Core::new(CoreConfig::default(), a.finish().unwrap());
        let snap = uarch_stats::Snapshot::of(&core, "");
        assert_eq!(
            snap.len(),
            1159,
            "the machine must expose exactly the paper's 1159 counters"
        );
    }

    #[test]
    fn stats_snapshot_includes_core_and_memory() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 0x1000);
        a.load(Reg::R2, Reg::R1, 0);
        a.halt();
        let core = run_program(a, 100);
        let snap = uarch_stats::Snapshot::of(&core, "");
        assert!(snap.get("fetch.SquashCycles").is_some());
        assert!(snap.get("dcache.ReadReq_misses").is_some());
        assert!(snap.get("numCycles").unwrap() > 0.0);
    }

    #[test]
    fn invalid_config_is_reported_not_panicked() {
        let mut a = Assembler::new("t");
        a.halt();
        let p = a.finish().unwrap();
        let cfg = CoreConfig {
            fetch_width: 0,
            ..CoreConfig::default()
        };
        let err = Core::try_new(cfg, p).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    fn zero_sample_interval_is_a_typed_error() {
        struct NullSink;
        impl SampleSink for NullSink {
            fn on_sample(&mut self, _insts: u64, _row: &[f64]) {}
        }
        let mut a = Assembler::new("t");
        a.halt();
        let mut core = Core::new(CoreConfig::default(), a.finish().unwrap());
        assert!(matches!(
            core.run_with_sink(100, 0, &mut NullSink),
            Err(SimError::ZeroSampleInterval)
        ));
    }

    #[test]
    fn cycle_budget_watchdog_stops_a_spinning_program() {
        struct NullSink;
        impl SampleSink for NullSink {
            fn on_sample(&mut self, _insts: u64, _row: &[f64]) {}
        }
        // An infinite loop: commits instructions forever, never halts.
        let mut a = Assembler::new("spin");
        let top = a.label();
        a.bind(top);
        a.addi(Reg::R1, Reg::R1, 1);
        a.jmp(top);
        let p = a.finish().unwrap();

        let cfg = CoreConfig {
            cycle_budget: Some(50_000),
            ..CoreConfig::default()
        };
        let mut core = Core::try_new(cfg, p).unwrap();
        let err = core
            .run_with_sink(100_000_000, 10_000, &mut NullSink)
            .unwrap_err();
        match err {
            SimError::CycleBudgetExceeded {
                budget,
                cycles,
                committed,
            } => {
                assert_eq!(budget, 50_000);
                assert!(cycles >= 50_000, "watchdog fired at {cycles}");
                assert!(committed > 0, "the loop was making (futile) progress");
            }
            other => panic!("expected CycleBudgetExceeded, got {other:?}"),
        }
        assert!(!core.halted());
    }

    #[test]
    fn cycle_budget_does_not_fire_on_a_completing_run() {
        struct CountSink(u64);
        impl SampleSink for CountSink {
            fn on_sample(&mut self, _insts: u64, _row: &[f64]) {
                self.0 += 1;
            }
        }
        let w = workloads_free_program();
        // Generous budget: the run finishes well inside it.
        let cfg = CoreConfig {
            cycle_budget: Some(100_000_000),
            ..CoreConfig::default()
        };
        let mut core = Core::try_new(cfg, w).unwrap();
        let mut sink = CountSink(0);
        let summary = core.run_with_sink(5_000, 1_000, &mut sink).unwrap();
        assert!(summary.committed >= 5_000);
        assert_eq!(sink.0, 5, "all five intervals sampled");
    }

    /// A small self-contained arithmetic program for budget tests.
    fn workloads_free_program() -> Program {
        let mut a = Assembler::new("arith");
        a.li(Reg::R1, 40_000);
        let top = a.label();
        a.bind(top);
        a.subi(Reg::R1, Reg::R1, 1);
        a.bnez(Reg::R1, top);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn stage_components_report_their_registry_ids() {
        let cfg = CoreConfig::default();
        assert_eq!(FetchStage::new(&cfg).component_id(), ComponentId::Fetch);
        assert_eq!(DecodeStage::default().component_id(), ComponentId::Decode);
        assert_eq!(RenameStage::default().component_id(), ComponentId::Rename);
        assert_eq!(IssueStage::default().component_id(), ComponentId::Iq);
        assert_eq!(ExecuteStage::new(&cfg).component_id(), ComponentId::Iew);
        assert_eq!(CommitStage::default().component_id(), ComponentId::Commit);
    }
}
