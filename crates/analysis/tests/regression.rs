//! Regression lock-in for the static analyzer's verdicts over the whole
//! workload corpus: every attack family must be flagged with exactly its
//! expected gadget kinds, and every benign workload must come back clean.

use std::collections::BTreeSet;

use uarch_analysis::report::{diff_baseline, CorpusReport, WorkloadVerdict};
use uarch_analysis::{analyze_program, check_program_run, SpecWindow};
use uarch_isa::GadgetKind;
use workloads::{
    attack_suite, bandwidth_suite, benign_suite, cross_core_suite, interprocedural_suite,
    polymorphic_suite, Class, Family, Workload,
};

/// The expected static verdict for a workload, keyed by its attack family.
fn expected(w: &Workload) -> BTreeSet<GadgetKind> {
    use GadgetKind as G;
    match w.family {
        Family::SpectreV1 => BTreeSet::from([G::SpecBoundsBypass, G::TimedLoad]),
        Family::SpectreV2 => BTreeSet::from([G::BtbInjection, G::TimedLoad]),
        Family::SpectreRsb => BTreeSet::from([G::RetHijack, G::TimedLoad]),
        Family::Meltdown | Family::BreakingKslr | Family::CacheOut => {
            BTreeSet::from([G::KernelRead, G::TimedLoad])
        }
        Family::FlushReload | Family::PrimeProbe => BTreeSet::from([G::TimedLoad]),
        Family::FlushFlush => BTreeSet::from([G::TimedFlush]),
        // The calibration loops exercise just the probe primitive of their
        // parent attack.
        Family::Calibration => {
            if w.name.ends_with("-ff") {
                BTreeSet::from([G::TimedFlush])
            } else {
                BTreeSet::from([G::TimedLoad])
            }
        }
        Family::Benign => BTreeSet::new(),
    }
}

fn check(w: &Workload) {
    let report = analyze_program(&w.program);
    assert_eq!(
        report.kinds(),
        expected(w),
        "workload {}: findings {:#?}",
        w.name,
        report.findings
    );
}

#[test]
fn attack_suite_verdicts_are_exact() {
    for w in attack_suite() {
        check(&w);
    }
}

#[test]
fn polymorphic_variants_are_all_flagged() {
    for w in polymorphic_suite() {
        check(&w);
    }
}

#[test]
fn bandwidth_reduced_variants_are_still_flagged() {
    for (_, w) in bandwidth_suite() {
        check(&w);
    }
}

#[test]
fn interprocedural_pair_verdicts_are_exact() {
    for w in interprocedural_suite() {
        check(&w);
    }
}

/// Every tenant of the cross-core scenario suite, analyzed as a
/// standalone program: the core-0 attackers must carry exactly their
/// family's gadget kinds, the victims and noisy-neighbor co-runners must
/// come back clean.
#[test]
fn cross_core_tenant_verdicts_are_exact() {
    for s in cross_core_suite() {
        for w in s.core_workloads() {
            check(&w);
        }
    }
}

/// The full differential corpus the `uarch-lint` harness validates.
fn full_corpus() -> Vec<Workload> {
    let mut v = attack_suite();
    v.extend(polymorphic_suite());
    v.extend(bandwidth_suite().into_iter().map(|(_, w)| w));
    v.extend(interprocedural_suite());
    v.extend(benign_suite());
    v.extend(cross_core_suite().iter().flat_map(|s| s.core_workloads()));
    v
}

fn corpus_report() -> CorpusReport {
    let verdicts = full_corpus()
        .iter()
        .map(|w| {
            let class = match w.class {
                Class::Malicious => "malicious",
                Class::Benign => "benign",
            };
            WorkloadVerdict::from_report(
                &w.name,
                class,
                w.family.label(),
                &analyze_program(&w.program),
                None,
            )
        })
        .collect();
    CorpusReport::new(verdicts, SpecWindow::table_ii())
}

/// Acceptance criterion: zero false negatives on the twelve polymorphic
/// variants (and, in fact, on the whole corpus), zero false positives on
/// the benign suite.
#[test]
fn differential_confusion_matrix_is_perfect() {
    let report = corpus_report();
    let c = report.confusion();
    assert_eq!(c.fn_, 0, "missed gadgets:\n{}", report.confusion().render());
    assert_eq!(c.fp, 0, "benign false alarms:\n{}", c.render());
    for v in &report.verdicts {
        if v.family == "spectreV1" && v.class_label == "malicious" {
            assert!(v.flagged(), "polymorphic variant {} missed", v.workload);
        }
    }
}

/// The checked-in findings baseline must match a fresh corpus run exactly:
/// this is the same gate `uarch-lint --baseline` applies in CI. Regenerate
/// with `uarch-lint --no-run --write-baseline crates/analysis/findings_baseline.json`.
#[test]
fn checked_in_baseline_matches_a_fresh_run() {
    let baseline = include_str!("../findings_baseline.json");
    let diff = diff_baseline(baseline, &corpus_report().baseline_lines());
    assert!(
        diff.is_clean(),
        "baseline drift — added {:#?}, removed {:#?}",
        diff.added,
        diff.removed
    );
}

/// Severity decoration sanity across the whole corpus: scores stay in
/// range, and the disclosure-primitive gadgets rank above bare timing
/// probes.
#[test]
fn severity_scores_rank_disclosure_above_timing() {
    let report = corpus_report();
    for r in report.records() {
        assert!(r.severity <= 100, "{}: severity out of range", r.workload);
        match r.kind {
            GadgetKind::SpecBoundsBypass | GadgetKind::KernelRead => {
                assert!(
                    r.severity >= 80,
                    "{}: {:?} under-ranked",
                    r.workload,
                    r.kind
                )
            }
            GadgetKind::TimedLoad | GadgetKind::TimedFlush => {
                assert!(r.severity < 80, "{}: {:?} over-ranked", r.workload, r.kind)
            }
            _ => {}
        }
    }
}

#[test]
fn benign_suite_is_clean() {
    for w in benign_suite() {
        let report = analyze_program(&w.program);
        assert!(
            report.findings.is_empty(),
            "benign workload {} flagged: {:#?}",
            w.name,
            report.findings
        );
    }
}

#[test]
fn every_workload_cfg_is_fully_reachable_enough_to_analyze() {
    // Sanity floor: the CFG must find more than one block and reach most of
    // the program (workloads are loops; only deliberately-speculative
    // gadget stubs may be architecturally unreachable).
    for w in attack_suite().iter().chain(benign_suite().iter()) {
        let report = analyze_program(&w.program);
        let blocks = report.cfg.blocks().len();
        assert!(blocks > 1, "{}: degenerate CFG", w.name);
        assert!(
            report.cfg.reachable_count() * 2 > blocks,
            "{}: most blocks should be reachable",
            w.name
        );
    }
}

#[test]
fn stat_invariants_hold_on_attack_and_benign_runs() {
    let attack = attack_suite().into_iter().next().unwrap();
    let benign = benign_suite().into_iter().next().unwrap();
    for w in [attack, benign] {
        let check = check_program_run(&w.program, 60_000, 4);
        assert!(
            check.committed > 10_000,
            "{}: too few committed",
            check.name
        );
        assert!(
            check.passed(),
            "{}: counter invariants violated: {:#?}",
            check.name,
            check.violations
        );
    }
}
