//! Interprocedural-analysis regression tests: the cross-function Spectre v1
//! gadget (secret load in the callee, probe transmit in the caller) that an
//! intraprocedural pass cannot see, its benign control, and the matched
//! call/return precision that makes the distinction possible.

use uarch_analysis::analyze_program;
use uarch_analysis::taint::Base;
use uarch_isa::{AluOp, Assembler, GadgetKind, Inst, Reg};
use workloads::spectre::{crossfn_benign, spectre_v1_crossfn};

/// The acceptance-criterion gadget: bounds check + secret load live in the
/// callee, the dependent probe-array transmit lives in the caller. Only an
/// analysis that follows taint through `ret` back to the matched call site
/// can pair the two loads.
#[test]
fn cross_function_spectre_v1_is_flagged_through_the_return() {
    let report = analyze_program(&spectre_v1_crossfn());
    let f = report
        .findings
        .iter()
        .find(|f| f.kind == GadgetKind::SpecBoundsBypass)
        .expect("cross-function gadget must be flagged");
    assert!(
        f.cross_function,
        "the dependent pair must span the call/return boundary: {f:#?}"
    );
    assert!(
        f.func.starts_with("fn@"),
        "anchor (the mispredicted bounds check) sits in the callee, got {}",
        f.func
    );
    assert!(
        f.pair_depth.is_some_and(|d| d > 0),
        "pair depth counts transient instructions past the branch"
    );
    assert!(f.severity >= 90, "cross-function + loop boosts: {f:#?}");
    assert!(
        f.bandwidth > 0,
        "disclosure gadget has a bandwidth estimate"
    );

    // The call graph itself: main plus one callee, with a matched return.
    assert_eq!(report.callgraph.functions().len(), 2);
}

/// Same call/return dependent-load *shape*, no speculation primitives: a
/// precise interprocedural analysis must keep it clean. (An analysis that
/// merely smeared taint across all returns would flag this too.)
#[test]
fn crossfn_benign_control_stays_clean() {
    let report = analyze_program(&crossfn_benign());
    assert!(
        report.findings.is_empty(),
        "benign cross-function control flagged: {:#?}",
        report.findings
    );
}

/// Matched returns are what keep the benign control clean: a callee's `ret`
/// flows only to the fall-throughs of call sites that can actually invoke
/// it. Two callees returning different constants must not pollute each
/// other's call-site states (the old global return-site approximation
/// merged them to Top).
#[test]
fn returns_flow_only_to_matching_call_sites() {
    let mut a = Assembler::new("matched-returns");
    let f = a.label();
    let g = a.label();
    let done = a.label();

    a.call(f);
    a.add(Reg::R10, Reg::R2, Reg::R0); // observe R2 after f returns
    a.call(g);
    a.add(Reg::R11, Reg::R2, Reg::R0); // observe R2 after g returns
    a.jmp(done);

    a.bind(f);
    a.li(Reg::R2, 111);
    a.ret();
    a.bind(g);
    a.li(Reg::R2, 222);
    a.ret();

    a.bind(done);
    a.halt();
    let p = a.finish().expect("assembles");

    let report = analyze_program(&p);
    let observe = |rd: Reg| {
        p.code()
            .iter()
            .position(|i| matches!(i, Inst::Alu { op: AluOp::Add, rd: r, .. } if *r == rd))
            .expect("observation point exists")
    };
    let r2 = Reg::R2.index();
    assert_eq!(
        report.taint.pre[observe(Reg::R10)][r2].base,
        Base::Const(111),
        "after `call f`, R2 is exactly f's return value"
    );
    assert_eq!(
        report.taint.pre[observe(Reg::R11)][r2].base,
        Base::Const(222),
        "after `call g`, R2 is exactly g's return value, not merged with f's"
    );
}
