//! Property tests for the CFG builder over arbitrary (even ill-formed)
//! instruction streams: block structure must always partition the program,
//! successor edges must stay in bounds, and `halt` blocks must be terminal.

use proptest::collection;
use proptest::prelude::*;
use uarch_analysis::{Cfg, DomTree, LoopForest};
use uarch_isa::{AluOp, Cond, Inst, Program, Reg, Width};

/// Decodes one generated `(selector, operand)` pair into an instruction.
/// Control targets are folded into `0..n` so programs stay self-contained,
/// but no assembler-level invariant (binding, termination) is guaranteed.
fn decode(sel: u8, operand: usize, n: usize) -> Inst {
    let t = operand % n;
    let r = Reg::from_index(operand % Reg::COUNT).unwrap();
    match sel % 12 {
        0 => Inst::Nop,
        1 => Inst::Li {
            rd: r,
            imm: operand as i64 - 8,
        },
        2 => Inst::AluI {
            op: AluOp::Add,
            rd: r,
            ra: r,
            imm: 1,
        },
        3 => Inst::Load {
            rd: r,
            base: r,
            offset: 0,
            width: Width::Byte,
            fp: false,
        },
        4 => Inst::Branch {
            cond: Cond::Eq,
            ra: r,
            rb: Reg::R0,
            target: t,
        },
        5 => Inst::Jump { target: t },
        6 => Inst::Call { target: t },
        7 => Inst::Ret,
        8 => Inst::Halt,
        9 => Inst::JumpInd { base: r },
        10 => Inst::CallInd { base: r },
        _ => Inst::Flush { base: r, offset: 0 },
    }
}

fn program_from(raw: &[(u8, usize)], fault: usize) -> Program {
    let n = raw.len();
    let code: Vec<Inst> = raw.iter().map(|&(sel, op)| decode(sel, op, n)).collect();
    let handler = if fault.is_multiple_of(4) {
        Some(fault % n)
    } else {
        None
    };
    Program::new("prop-cfg", code, Vec::new(), handler)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn blocks_partition_every_program(
        raw in collection::vec((0u8..=255, 0usize..256), 1..64),
        fault in 0usize..256,
    ) {
        let p = program_from(&raw, fault);
        let cfg = Cfg::build(&p);
        let mut covered = vec![0u32; p.len()];
        let mut prev_end = 0;
        for (b, blk) in cfg.blocks().iter().enumerate() {
            prop_assert!(blk.start < blk.end, "empty block {b}");
            prop_assert_eq!(blk.start, prev_end, "blocks must tile in order");
            prev_end = blk.end;
            for (i, slot) in covered.iter_mut().enumerate().take(blk.end).skip(blk.start) {
                *slot += 1;
                prop_assert_eq!(cfg.block_of(i), b);
            }
        }
        prop_assert_eq!(prev_end, p.len());
        prop_assert!(covered.iter().all(|&c| c == 1),
            "every instruction lives in exactly one block");
    }

    #[test]
    fn successor_edges_stay_in_bounds(
        raw in collection::vec((0u8..=255, 0usize..256), 1..64),
        fault in 0usize..256,
    ) {
        let p = program_from(&raw, fault);
        let cfg = Cfg::build(&p);
        for blk in cfg.blocks() {
            for &s in &blk.succs {
                prop_assert!(s < cfg.blocks().len(), "successor out of bounds");
                // A successor edge lands on a block start, which is a leader
                // by construction; round-tripping through block_of proves it.
                prop_assert_eq!(cfg.block_of(cfg.blocks()[s].start), s);
            }
        }
        for &r in cfg.roots() {
            prop_assert!(cfg.is_reachable(r), "roots are reachable");
        }
    }

    #[test]
    fn dominance_is_a_partial_order_rooted_at_idoms(
        raw in collection::vec((0u8..=255, 0usize..256), 1..64),
        fault in 0usize..256,
    ) {
        let p = program_from(&raw, fault);
        let cfg = Cfg::build(&p);
        let dom = DomTree::build(&cfg);
        let n = cfg.blocks().len();
        for b in 0..n {
            if !cfg.is_reachable(b) {
                prop_assert!(dom.depth(b).is_none(), "unreachable block has no depth");
                continue;
            }
            // Reflexive.
            prop_assert!(dom.dominates(b, b), "dominance must be reflexive");
            // The immediate dominator strictly dominates, one level up.
            if let Some(i) = dom.idom(b) {
                prop_assert!(dom.dominates(i, b));
                prop_assert_eq!(dom.depth(i).unwrap() + 1, dom.depth(b).unwrap());
            }
            // Every block on the dominator chain dominates `b`.
            for &a in dom.chain(b).iter() {
                prop_assert!(dom.dominates(a, b), "chain member must dominate");
            }
        }
        // Antisymmetric: mutual dominance implies equality.
        for a in 0..n {
            for b in 0..n {
                if dom.dominates(a, b) && dom.dominates(b, a) {
                    prop_assert_eq!(a, b, "dominance must be antisymmetric");
                }
            }
        }
    }

    #[test]
    fn loop_headers_dominate_their_bodies(
        raw in collection::vec((0u8..=255, 0usize..256), 1..64),
        fault in 0usize..256,
    ) {
        let p = program_from(&raw, fault);
        let cfg = Cfg::build(&p);
        let dom = DomTree::build(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        for l in forest.loops() {
            prop_assert!(l.blocks.contains(&l.header), "header is in its own body");
            for &b in &l.blocks {
                prop_assert!(dom.dominates(l.header, b),
                    "loop header {} must dominate body block {b}", l.header);
            }
            for &(src, header) in &l.back_edges {
                prop_assert_eq!(header, l.header);
                prop_assert!(l.blocks.contains(&src), "back-edge source is in the body");
                prop_assert!(cfg.blocks()[src].succs.contains(&l.header),
                    "back edge must be a real CFG edge");
            }
            // The innermost map agrees: every body block's innermost loop is
            // a subset of (or equal to) this loop.
            for &b in &l.blocks {
                let inner = forest.innermost(b).expect("body block is in some loop");
                prop_assert!(inner.blocks.is_subset(&l.blocks) || l.blocks.is_subset(&inner.blocks),
                    "loops containing a block must nest");
            }
        }
    }

    #[test]
    fn halt_blocks_are_terminal(
        raw in collection::vec((0u8..=255, 0usize..256), 1..64),
        fault in 0usize..256,
    ) {
        let p = program_from(&raw, fault);
        let cfg = Cfg::build(&p);
        for blk in cfg.blocks() {
            if matches!(p.code()[blk.terminator()], Inst::Halt) {
                prop_assert!(blk.succs.is_empty(),
                    "halt-terminated block must have no successors");
            }
        }
    }
}
