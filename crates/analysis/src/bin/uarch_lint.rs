//! `uarch-lint`: static gadget analysis and stat-invariant checks over the
//! whole workload corpus.
//!
//! Usage:
//!
//! ```text
//! uarch-lint [--dot <workload-name>] [--no-run] [--insts N]
//! ```
//!
//! Default mode prints one row per workload (attacks, polymorphic Spectre
//! variants, benign suite) with the gadget kinds the static analyzer found,
//! then runs the statistics-invariant checker on one attack and one benign
//! workload. Exits non-zero if any benign workload has findings, any
//! malicious workload has none, or a counter invariant is violated.
//!
//! `--dot <name>` prints the named workload's CFG in Graphviz format and
//! exits.

use std::collections::BTreeSet;

use uarch_analysis::{
    analyze_program, check_program_run, lint_bindings, lint_component_coverage, lint_schema,
};
use uarch_isa::GadgetKind;
use workloads::{attack_suite, benign_suite, polymorphic_suite, Class, Workload};

fn corpus() -> Vec<Workload> {
    let mut v = attack_suite();
    v.extend(polymorphic_suite());
    v.extend(benign_suite());
    v
}

fn kinds_label(kinds: &BTreeSet<GadgetKind>) -> String {
    if kinds.is_empty() {
        "-".to_string()
    } else {
        kinds
            .iter()
            .map(|k| k.label())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dot: Option<String> = None;
    let mut run_invariants = true;
    let mut insts: u64 = 200_000;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dot" => dot = it.next().cloned(),
            "--no-run" => run_invariants = false,
            "--insts" => {
                insts = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--insts needs a number"));
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let corpus = corpus();
    if let Some(name) = dot {
        let Some(w) = corpus.iter().find(|w| w.name == name) else {
            eprintln!("no workload named `{name}`; known:");
            for w in &corpus {
                eprintln!("  {}", w.name);
            }
            std::process::exit(2);
        };
        let report = analyze_program(&w.program);
        print!("{}", report.cfg.to_dot(&w.program));
        return;
    }

    let mut failures = 0;
    println!(
        "{:<28} {:<10} {:>6} {:>6}  findings",
        "workload", "class", "insts", "blocks"
    );
    println!("{}", "-".repeat(96));
    for w in &corpus {
        let report = analyze_program(&w.program);
        let kinds = report.kinds();
        let ok = match w.class {
            Class::Benign => kinds.is_empty(),
            Class::Malicious => !kinds.is_empty(),
        };
        if !ok {
            failures += 1;
        }
        println!(
            "{:<28} {:<10} {:>6} {:>6}  {}{}",
            w.name,
            if w.class == Class::Benign {
                "benign"
            } else {
                "malicious"
            },
            w.program.len(),
            report.cfg.blocks().len(),
            kinds_label(&kinds),
            if ok { "" } else { "  <-- UNEXPECTED" },
        );
    }
    println!();

    // Statistics schema + invariant bindings are workload-independent.
    let probe = sim_cpu::Core::new(sim_cpu::CoreConfig::default(), {
        let mut a = uarch_isa::Assembler::new("schema-probe");
        a.halt();
        a.finish().expect("probe assembles")
    });
    let snap = uarch_stats::Snapshot::of(&probe, "");
    let schema_issues = lint_schema(snap.names());
    let binding_issues = lint_bindings(&sim_cpu::stat_invariants(), &snap);
    let coverage_issues = lint_component_coverage(snap.names());
    println!(
        "stat schema: {} stats, {} schema issues, {} binding issues, {} component-coverage issues",
        snap.len(),
        schema_issues.len(),
        binding_issues.len(),
        coverage_issues.len()
    );
    for issue in schema_issues
        .iter()
        .chain(&binding_issues)
        .chain(&coverage_issues)
    {
        println!("  schema: {issue}");
        failures += 1;
    }

    if run_invariants {
        let attack = attack_suite()
            .into_iter()
            .next()
            .expect("attack suite non-empty");
        let benign = benign_suite()
            .into_iter()
            .next()
            .expect("benign suite non-empty");
        for w in [attack, benign] {
            let check = check_program_run(&w.program, insts, 8);
            println!(
                "invariants: {:<24} {} committed, {} samples: {}",
                check.name,
                check.committed,
                check.samples,
                if check.passed() { "ok" } else { "VIOLATIONS" }
            );
            for v in &check.violations {
                println!("  violation: {v}");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("\nuarch-lint: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("\nuarch-lint: all checks passed");
}

fn usage(msg: &str) -> ! {
    eprintln!("uarch-lint: {msg}");
    eprintln!("usage: uarch-lint [--dot <workload-name>] [--no-run] [--insts N]");
    std::process::exit(2);
}
