//! `uarch-lint`: the differential-validation harness — static gadget
//! analysis, dynamic cross-checking and stat-invariant checks over the
//! whole workload corpus.
//!
//! Usage:
//!
//! ```text
//! uarch-lint [--dot <name>] [--callgraph <name>] [--no-run] [--insts N]
//!            [--dynamic N] [--json PATH]
//!            [--baseline PATH] [--write-baseline PATH]
//! ```
//!
//! Default mode prints one row per workload (attacks, the twelve
//! polymorphic Spectre variants, the bandwidth-reduced evasions, the
//! interprocedural pair, and the benign suite) with the severity-ranked
//! findings the static analyzer produced, then the static-vs-ground-truth
//! confusion matrix, then the statistics-invariant checks. The table is
//! deterministically ordered — workloads by name, findings by (block,
//! kind, at) — so snapshots and CI diffs are stable.
//!
//! - `--dynamic N` additionally runs every workload on the simulator for
//!   up to `N` committed instructions and records the instruction count of
//!   the first `LeakByte` mark as dynamic evidence in the JSON report.
//! - `--json PATH` writes the SARIF-like findings report (one finding per
//!   line) to `PATH`.
//! - `--baseline PATH` diffs the run's finding identity lines against the
//!   checked-in baseline: new findings or newly-missed gadgets fail the
//!   run. `--write-baseline PATH` refreshes the baseline instead.
//! - `--dot <name>` / `--callgraph <name>` print the named workload's CFG
//!   or call graph in Graphviz format and exit.
//!
//! Exits non-zero if any benign workload has findings, any malicious
//! workload has none, the baseline diff is not clean, or a counter
//! invariant is violated.

use uarch_analysis::report::{diff_baseline, CorpusReport, WorkloadVerdict};
use uarch_analysis::{
    analyze_program_with, check_program_run, lint_bindings, lint_component_coverage, lint_schema,
    SpecWindow,
};
use uarch_isa::MarkKind;
use workloads::{
    attack_suite, bandwidth_suite, benign_suite, cross_core_suite, interprocedural_suite,
    polymorphic_suite, Class, Workload,
};

/// The full corpus the differential harness validates: training attacks,
/// polymorphic variants, bandwidth-reduced evasions, the interprocedural
/// pair, the benign suite, and every tenant program of the cross-core
/// scenario suite flattened to one workload per core (`scenario#coreN`) —
/// the cross-core attackers must be flagged, their victims and the
/// noisy-neighbor co-runners must stay clean.
fn corpus() -> Vec<Workload> {
    let mut v = attack_suite();
    v.extend(polymorphic_suite());
    v.extend(bandwidth_suite().into_iter().map(|(_, w)| w));
    v.extend(interprocedural_suite());
    v.extend(benign_suite());
    v.extend(cross_core_suite().iter().flat_map(|s| s.core_workloads()));
    v
}

struct Opts {
    dot: Option<String>,
    callgraph: Option<String>,
    run_invariants: bool,
    insts: u64,
    dynamic: Option<u64>,
    json: Option<String>,
    baseline: Option<String>,
    write_baseline: Option<String>,
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut o = Opts {
        dot: None,
        callgraph: None,
        run_invariants: true,
        insts: 200_000,
        dynamic: None,
        json: None,
        baseline: None,
        write_baseline: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next_str = |flag: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--dot" => o.dot = Some(next_str("--dot")),
            "--callgraph" => o.callgraph = Some(next_str("--callgraph")),
            "--no-run" => o.run_invariants = false,
            "--insts" => {
                o.insts = next_str("--insts")
                    .parse()
                    .unwrap_or_else(|_| usage("--insts needs a number"));
            }
            "--dynamic" => {
                o.dynamic = Some(
                    next_str("--dynamic")
                        .parse()
                        .unwrap_or_else(|_| usage("--dynamic needs a number")),
                );
            }
            "--json" => o.json = Some(next_str("--json")),
            "--baseline" => o.baseline = Some(next_str("--baseline")),
            "--write-baseline" => o.write_baseline = Some(next_str("--write-baseline")),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    o
}

/// Runs `w` on the simulator for up to `max_insts` committed instructions
/// and returns the committed-instruction count of the first `LeakByte`
/// mark, if any — the dynamic ground-truth evidence for the confusion
/// matrix.
fn dynamic_leak_inst(w: &Workload, max_insts: u64) -> Option<u64> {
    let mut core = sim_cpu::Core::new(sim_cpu::CoreConfig::default(), w.program.clone());
    core.run(max_insts);
    core.marks()
        .iter()
        .find(|m| m.kind == MarkKind::LeakByte)
        .map(|m| m.at_inst)
}

fn main() {
    let opts = parse_opts();
    let corpus = corpus();

    if let Some(name) = opts.dot.as_ref().or(opts.callgraph.as_ref()) {
        let Some(w) = corpus.iter().find(|w| &w.name == name) else {
            eprintln!("no workload named `{name}`; known:");
            for w in &corpus {
                eprintln!("  {}", w.name);
            }
            std::process::exit(2);
        };
        let report = uarch_analysis::analyze_program(&w.program);
        if opts.dot.is_some() {
            print!("{}", report.cfg.to_dot(&w.program));
        } else {
            print!("{}", report.callgraph.to_dot(&w.program));
        }
        return;
    }

    let window = SpecWindow::from_config(&sim_cpu::CoreConfig::default());
    let mut failures = 0;
    let mut verdicts = Vec::new();
    println!(
        "speculative window: rob={} issue={} resolve={}cy -> transient limit {} insts",
        window.rob_entries,
        window.issue_width,
        window.resolve_latency,
        window.transient_limit(),
    );
    println!(
        "{:<28} {:<10} {:>6} {:>6} {:>4}  findings",
        "workload", "class", "insts", "blocks", "sev"
    );
    println!("{}", "-".repeat(100));
    let mut rows = Vec::new();
    for w in &corpus {
        let report = analyze_program_with(&w.program, &window);
        let leak = opts.dynamic.and_then(|n| dynamic_leak_inst(w, n));
        let class_label = match w.class {
            Class::Benign => "benign",
            Class::Malicious => "malicious",
        };
        let verdict =
            WorkloadVerdict::from_report(&w.name, class_label, w.family.label(), &report, leak);
        let ok = match w.class {
            Class::Benign => !verdict.flagged(),
            Class::Malicious => verdict.flagged(),
        };
        if !ok {
            failures += 1;
        }
        let max_sev = verdict.records.iter().map(|r| r.severity).max();
        let summary = if verdict.records.is_empty() {
            "-".to_string()
        } else {
            verdict
                .records
                .iter()
                .map(|r| format!("{}@{}(sev {})", r.kind.label(), r.at, r.severity))
                .collect::<Vec<_>>()
                .join(", ")
        };
        rows.push((
            w.name.clone(),
            format!(
                "{:<28} {:<10} {:>6} {:>6} {:>4}  {}{}",
                w.name,
                class_label,
                w.program.len(),
                report.cfg.blocks().len(),
                max_sev.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
                summary,
                if ok { "" } else { "  <-- UNEXPECTED" },
            ),
        ));
        verdicts.push(verdict);
    }
    // Deterministic table: rows sorted by workload name, matching the
    // order the JSON report uses.
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    for (_, line) in &rows {
        println!("{line}");
    }
    println!();

    let report = CorpusReport::new(verdicts, window);
    println!("{}", report.confusion().render());
    println!();

    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("uarch-lint: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("findings JSON written to {path}");
    }
    if let Some(path) = &opts.write_baseline {
        if let Err(e) = std::fs::write(path, report.baseline_file()) {
            eprintln!("uarch-lint: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!(
            "baseline written to {path} ({} findings)",
            report.baseline_lines().len()
        );
    } else if let Some(path) = &opts.baseline {
        match std::fs::read_to_string(path) {
            Ok(contents) => {
                let diff = diff_baseline(&contents, &report.baseline_lines());
                if diff.is_clean() {
                    println!(
                        "baseline {path}: clean ({} findings)",
                        report.baseline_lines().len()
                    );
                } else {
                    for l in &diff.added {
                        println!("baseline: NEW finding (not in baseline): {l}");
                        failures += 1;
                    }
                    for l in &diff.removed {
                        println!("baseline: MISSING finding (gadget no longer detected): {l}");
                        failures += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("uarch-lint: cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    println!();

    // Statistics schema + invariant bindings are workload-independent.
    let probe = sim_cpu::Core::new(sim_cpu::CoreConfig::default(), {
        let mut a = uarch_isa::Assembler::new("schema-probe");
        a.halt();
        a.finish().expect("probe assembles")
    });
    let snap = uarch_stats::Snapshot::of(&probe, "");
    let schema_issues = lint_schema(snap.names());
    let binding_issues = lint_bindings(&sim_cpu::stat_invariants(), &snap);
    let coverage_issues = lint_component_coverage(snap.names());
    println!(
        "stat schema: {} stats, {} schema issues, {} binding issues, {} component-coverage issues",
        snap.len(),
        schema_issues.len(),
        binding_issues.len(),
        coverage_issues.len()
    );
    for issue in schema_issues
        .iter()
        .chain(&binding_issues)
        .chain(&coverage_issues)
    {
        println!("  schema: {issue}");
        failures += 1;
    }

    if opts.run_invariants {
        let attack = attack_suite()
            .into_iter()
            .next()
            .expect("attack suite non-empty");
        let benign = benign_suite()
            .into_iter()
            .next()
            .expect("benign suite non-empty");
        for w in [attack, benign] {
            let check = check_program_run(&w.program, opts.insts, 8);
            println!(
                "invariants: {:<24} {} committed, {} samples: {}",
                check.name,
                check.committed,
                check.samples,
                if check.passed() { "ok" } else { "VIOLATIONS" }
            );
            for v in &check.violations {
                println!("  violation: {v}");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("\nuarch-lint: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("\nuarch-lint: all checks passed");
}

fn usage(msg: &str) -> ! {
    eprintln!("uarch-lint: {msg}");
    eprintln!(
        "usage: uarch-lint [--dot <name>] [--callgraph <name>] [--no-run] [--insts N]\n\
         \x20                 [--dynamic N] [--json PATH] [--baseline PATH] [--write-baseline PATH]"
    );
    std::process::exit(2);
}
