//! Machine-readable findings report, confusion matrix, and baseline gate.
//!
//! The differential-validation harness (`uarch-lint`) runs the static
//! analyzer over the whole corpus, optionally runs each workload on the
//! simulator to collect its dynamic leak evidence, and emits:
//!
//! - a SARIF-like findings JSON (hand-rolled — the workspace is
//!   dependency-free, so no serde) in which **every finding occupies
//!   exactly one line**, keeping diffs reviewable;
//! - a static-vs-dynamic [`Confusion`] matrix (static verdict = "any
//!   finding" against the corpus ground-truth labels the simulator's leak
//!   events established);
//! - a sorted baseline file of finding identity lines that CI gates on:
//!   [`diff_baseline`] reports findings that appeared (`added`) or gadgets
//!   that went missing (`removed`) relative to the checked-in baseline.

use uarch_isa::GadgetKind;

use crate::specwindow::SpecWindow;
use crate::ProgramReport;

/// One finding, flattened with its workload context for serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FindingRecord {
    /// Workload name.
    pub workload: String,
    /// Basic-block index of the anchor instruction.
    pub block: usize,
    /// Anchor instruction index.
    pub at: usize,
    /// Gadget kind.
    pub kind: GadgetKind,
    /// Severity score, 0–100.
    pub severity: u32,
    /// Estimated leak bandwidth, bits/s.
    pub bandwidth: u64,
    /// Containing function.
    pub func: String,
    /// Path condition guarding the anchor block.
    pub path: String,
    /// Anchor sits in a natural loop.
    pub in_loop: bool,
    /// Dependent pair spans a call/return boundary.
    pub cross_function: bool,
    /// Transient depth of the pair's second load, when applicable.
    pub pair_depth: Option<usize>,
    /// Human-readable explanation.
    pub detail: String,
}

impl FindingRecord {
    /// The finding's identity line — the unit the baseline gate compares.
    /// Severity/bandwidth/detail are deliberately excluded so retuning the
    /// window model does not churn the baseline.
    pub fn identity_line(&self) -> String {
        format!(
            "{{\"workload\":{},\"block\":{},\"at\":{},\"kind\":{}}}",
            json_str(&self.workload),
            self.block,
            self.at,
            json_str(self.kind.label()),
        )
    }

    fn to_json_line(&self) -> String {
        let pair_depth = match self.pair_depth {
            Some(d) => d.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"workload\":{},\"block\":{},\"at\":{},\"kind\":{},\"severity\":{},\
             \"bandwidthBits\":{},\"func\":{},\"inLoop\":{},\"crossFunction\":{},\
             \"pairDepth\":{},\"path\":{},\"detail\":{}}}",
            json_str(&self.workload),
            self.block,
            self.at,
            json_str(self.kind.label()),
            self.severity,
            self.bandwidth,
            json_str(&self.func),
            self.in_loop,
            self.cross_function,
            pair_depth,
            json_str(&self.path),
            json_str(&self.detail),
        )
    }
}

/// The analyzer's verdict on one workload, with its ground truth and (when
/// the harness ran the simulator) the dynamic leak evidence.
#[derive(Debug, Clone)]
pub struct WorkloadVerdict {
    /// Workload name.
    pub workload: String,
    /// Ground-truth class label (`malicious` / `benign`).
    pub class_label: String,
    /// Attack family label.
    pub family: String,
    /// Findings, sorted by (block, kind, at).
    pub records: Vec<FindingRecord>,
    /// Instruction count at which the simulator observed the first leaked
    /// byte, when the dynamic half of the harness ran.
    pub dynamic_leak_inst: Option<u64>,
}

impl WorkloadVerdict {
    /// Flattens a [`ProgramReport`] into sorted finding records.
    pub fn from_report(
        workload: &str,
        class_label: &str,
        family: &str,
        report: &ProgramReport,
        dynamic_leak_inst: Option<u64>,
    ) -> WorkloadVerdict {
        let mut records: Vec<FindingRecord> = report
            .findings
            .iter()
            .map(|f| FindingRecord {
                workload: workload.to_string(),
                block: report.cfg.block_of(f.at),
                at: f.at,
                kind: f.kind,
                severity: f.severity,
                bandwidth: f.bandwidth,
                func: f.func.clone(),
                path: f.path.clone(),
                in_loop: f.in_loop,
                cross_function: f.cross_function,
                pair_depth: f.pair_depth,
                detail: f.detail.clone(),
            })
            .collect();
        records.sort_by_key(|a| (a.block, a.kind, a.at));
        WorkloadVerdict {
            workload: workload.to_string(),
            class_label: class_label.to_string(),
            family: family.to_string(),
            records,
            dynamic_leak_inst,
        }
    }

    /// Static verdict: does the analyzer flag this workload at all?
    pub fn flagged(&self) -> bool {
        !self.records.is_empty()
    }
}

/// Static-verdict vs ground-truth confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Malicious and flagged.
    pub tp: usize,
    /// Benign but flagged.
    pub fp: usize,
    /// Malicious but clean — a missed gadget.
    pub fn_: usize,
    /// Benign and clean.
    pub tn: usize,
}

impl Confusion {
    /// Total workloads counted.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Renders the matrix plus derived rates.
    pub fn render(&self) -> String {
        let pct = |num: usize, den: usize| {
            if den == 0 {
                100.0
            } else {
                100.0 * num as f64 / den as f64
            }
        };
        format!(
            "confusion matrix (static verdict vs ground truth, {} workloads)\n\
             \n\
             {:>22} | {:>8} | {:>8}\n\
             {:->22}-+-{:->8}-+-{:->8}\n\
             {:>22} | {:>8} | {:>8}\n\
             {:>22} | {:>8} | {:>8}\n\
             \n\
             recall {:.1}%  precision {:.1}%  accuracy {:.1}%",
            self.total(),
            "",
            "flagged",
            "clean",
            "",
            "",
            "",
            "malicious",
            self.tp,
            self.fn_,
            "benign",
            self.fp,
            self.tn,
            pct(self.tp, self.tp + self.fn_),
            pct(self.tp, self.tp + self.fp),
            pct(self.tp + self.tn, self.total()),
        )
    }
}

/// The whole corpus run: every verdict plus the window model it ran under.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// Per-workload verdicts, sorted by workload name.
    pub verdicts: Vec<WorkloadVerdict>,
    /// The speculative-window model the analyzer used.
    pub window: SpecWindow,
}

impl CorpusReport {
    /// Builds the report, sorting verdicts by workload name so the output
    /// is deterministic regardless of collection order.
    pub fn new(mut verdicts: Vec<WorkloadVerdict>, window: SpecWindow) -> CorpusReport {
        verdicts.sort_by(|a, b| a.workload.cmp(&b.workload));
        CorpusReport { verdicts, window }
    }

    /// The static-vs-ground-truth confusion matrix.
    pub fn confusion(&self) -> Confusion {
        let mut c = Confusion::default();
        for v in &self.verdicts {
            let malicious = v.class_label == "malicious";
            match (malicious, v.flagged()) {
                (true, true) => c.tp += 1,
                (true, false) => c.fn_ += 1,
                (false, true) => c.fp += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// All finding records across the corpus, in report order.
    pub fn records(&self) -> impl Iterator<Item = &FindingRecord> {
        self.verdicts.iter().flat_map(|v| v.records.iter())
    }

    /// The SARIF-like findings JSON. Every finding is serialized on exactly
    /// one line so baseline diffs stay line-oriented.
    pub fn to_json(&self) -> String {
        let c = self.confusion();
        let mut out = String::from("{\n");
        out.push_str("  \"version\": \"1.0\",\n");
        out.push_str(&format!(
            "  \"tool\": {{\"name\": \"uarch-lint\", \"transientLimit\": {}, \"resolveLatency\": {}}},\n",
            self.window.transient_limit(),
            self.window.resolve_latency,
        ));
        out.push_str("  \"runs\": [\n");
        for (i, v) in self.verdicts.iter().enumerate() {
            let leak = match v.dynamic_leak_inst {
                Some(x) => x.to_string(),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"workload\": {}, \"class\": {}, \"family\": {}, \"staticVerdict\": {}, \"dynamicLeakInst\": {}, \"findings\": [\n",
                json_str(&v.workload),
                json_str(&v.class_label),
                json_str(&v.family),
                json_str(if v.flagged() { "flagged" } else { "clean" }),
                leak,
            ));
            for (j, r) in v.records.iter().enumerate() {
                let comma = if j + 1 < v.records.len() { "," } else { "" };
                out.push_str(&format!("      {}{}\n", r.to_json_line(), comma));
            }
            let comma = if i + 1 < self.verdicts.len() { "," } else { "" };
            out.push_str(&format!("    ]}}{comma}\n"));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"confusion\": {{\"tp\": {}, \"fp\": {}, \"fn\": {}, \"tn\": {}}}\n",
            c.tp, c.fp, c.fn_, c.tn
        ));
        out.push_str("}\n");
        out
    }

    /// The sorted identity lines the baseline file stores.
    pub fn baseline_lines(&self) -> Vec<String> {
        let mut lines: Vec<String> = self.records().map(|r| r.identity_line()).collect();
        lines.sort();
        lines
    }

    /// Renders the baseline file contents (one identity line per finding,
    /// sorted, trailing newline).
    pub fn baseline_file(&self) -> String {
        let mut s = self.baseline_lines().join("\n");
        s.push('\n');
        s
    }
}

/// One parsed baseline identity line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Workload name.
    pub workload: String,
    /// Basic-block index.
    pub block: usize,
    /// Anchor instruction index.
    pub at: usize,
    /// Gadget-kind label (e.g. `spec-bounds-bypass`).
    pub kind: String,
}

impl BaselineEntry {
    /// Parses one identity line. The grammar is exactly what
    /// [`FindingRecord::identity_line`] emits; anything else returns `None`.
    pub fn parse(line: &str) -> Option<BaselineEntry> {
        let field = |key: &str| -> Option<&str> {
            let tag = format!("\"{key}\":");
            let rest = &line[line.find(&tag)? + tag.len()..];
            let end = rest.find([',', '}'])?;
            Some(rest[..end].trim())
        };
        let unquote = |s: &str| -> Option<String> {
            let s = s.strip_prefix('"')?.strip_suffix('"')?;
            Some(json_unescape(s))
        };
        Some(BaselineEntry {
            workload: unquote(field("workload")?)?,
            block: field("block")?.parse().ok()?,
            at: field("at")?.parse().ok()?,
            kind: unquote(field("kind")?)?,
        })
    }
}

/// Difference between the checked-in baseline and a fresh corpus run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BaselineDiff {
    /// Findings in the fresh run that the baseline lacks (new findings).
    pub added: Vec<String>,
    /// Baseline findings the fresh run no longer produces (newly-missed
    /// gadgets).
    pub removed: Vec<String>,
}

impl BaselineDiff {
    /// Whether the run matches the baseline exactly.
    pub fn is_clean(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Compares a baseline file's contents against a fresh run's sorted
/// identity lines. Comparison is by line set, so reordering is immaterial;
/// blank lines and `#` comments in the baseline are ignored.
pub fn diff_baseline(baseline_contents: &str, fresh_lines: &[String]) -> BaselineDiff {
    use std::collections::BTreeSet;
    let old: BTreeSet<&str> = baseline_contents
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let new: BTreeSet<&str> = fresh_lines.iter().map(String::as_str).collect();
    BaselineDiff {
        added: new.difference(&old).map(|s| s.to_string()).collect(),
        removed: old.difference(&new).map(|s| s.to_string()).collect(),
    }
}

/// JSON string literal with escaping for quotes, backslashes and controls.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, block: usize, at: usize, kind: GadgetKind) -> FindingRecord {
        FindingRecord {
            workload: workload.to_string(),
            block,
            at,
            kind,
            severity: 88,
            bandwidth: 1234,
            func: "main".to_string(),
            path: "Geu@3:nt".to_string(),
            in_loop: true,
            cross_function: false,
            pair_depth: Some(7),
            detail: "test \"quoted\" detail".to_string(),
        }
    }

    fn verdict(workload: &str, class: &str, records: Vec<FindingRecord>) -> WorkloadVerdict {
        WorkloadVerdict {
            workload: workload.to_string(),
            class_label: class.to_string(),
            family: "spectreV1".to_string(),
            records,
            dynamic_leak_inst: Some(42),
        }
    }

    #[test]
    fn identity_lines_round_trip_through_parse() {
        let r = record("spectre-v1", 3, 17, GadgetKind::SpecBoundsBypass);
        let line = r.identity_line();
        let e = BaselineEntry::parse(&line).expect("parses");
        assert_eq!(e.workload, "spectre-v1");
        assert_eq!(e.block, 3);
        assert_eq!(e.at, 17);
        assert_eq!(e.kind, "spec-bounds-bypass");
        assert!(BaselineEntry::parse("not json").is_none());
    }

    #[test]
    fn confusion_counts_all_four_quadrants() {
        let report = CorpusReport::new(
            vec![
                verdict(
                    "atk-hit",
                    "malicious",
                    vec![record("atk-hit", 0, 1, GadgetKind::TimedLoad)],
                ),
                verdict("atk-miss", "malicious", vec![]),
                verdict("ben-clean", "benign", vec![]),
                verdict(
                    "ben-noisy",
                    "benign",
                    vec![record("ben-noisy", 0, 1, GadgetKind::TimedLoad)],
                ),
            ],
            SpecWindow::table_ii(),
        );
        let c = report.confusion();
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (1, 1, 1, 1));
        let rendered = c.render();
        assert!(rendered.contains("recall 50.0%"));
        assert!(rendered.contains("4 workloads"));
    }

    #[test]
    fn json_has_one_line_per_finding_and_sorted_runs() {
        let report = CorpusReport::new(
            vec![
                verdict(
                    "zzz",
                    "malicious",
                    vec![record("zzz", 1, 5, GadgetKind::TimedLoad)],
                ),
                verdict(
                    "aaa",
                    "malicious",
                    vec![
                        record("aaa", 2, 9, GadgetKind::TimedFlush),
                        record("aaa", 1, 4, GadgetKind::SpecBoundsBypass),
                    ],
                ),
            ],
            SpecWindow::table_ii(),
        );
        let json = report.to_json();
        // Runs sorted by name.
        assert!(json.find("\"aaa\"").unwrap() < json.find("\"zzz\"").unwrap());
        // One line per finding record.
        let finding_lines: Vec<&str> = json
            .lines()
            .filter(|l| l.trim_start().starts_with("{\"workload\":\""))
            .collect();
        assert_eq!(finding_lines.len(), 3);
        // Escaping keeps quoted details on a single line.
        assert!(json.contains("test \\\"quoted\\\" detail"));
        assert!(json.contains("\"transientLimit\": 192"));
    }

    #[test]
    fn baseline_diff_reports_added_and_removed() {
        let report = CorpusReport::new(
            vec![verdict(
                "w",
                "malicious",
                vec![
                    record("w", 1, 4, GadgetKind::SpecBoundsBypass),
                    record("w", 2, 9, GadgetKind::TimedLoad),
                ],
            )],
            SpecWindow::table_ii(),
        );
        let lines = report.baseline_lines();
        assert_eq!(lines.len(), 2);
        assert!(lines.windows(2).all(|w| w[0] <= w[1]), "sorted");

        // Identical baseline: clean.
        assert!(diff_baseline(&report.baseline_file(), &lines).is_clean());

        // Baseline missing one line: that finding shows as added.
        let d = diff_baseline(&lines[1], &lines);
        assert_eq!(d.added, vec![lines[0].clone()]);
        assert!(d.removed.is_empty());

        // Baseline with an extra stale line: shows as removed; comments and
        // blanks are ignored.
        let stale = format!("# comment\n\n{}\n{}\nstale-line\n", lines[0], lines[1]);
        let d = diff_baseline(&stale, &lines);
        assert!(d.added.is_empty());
        assert_eq!(d.removed, vec!["stale-line".to_string()]);
    }
}
