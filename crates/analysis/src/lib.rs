//! Static analysis over the simulated ISA: CFG construction, speculative
//! taint tracking with gadget detection, and statistics-invariant lints.
//!
//! Three passes over a [`uarch_isa::Program`]:
//!
//! 1. [`mod@cfg`] — basic blocks, successor edges (with return-site and
//!    address-taken approximations for indirect flow), reachability, and a
//!    Graphviz emitter.
//! 2. [`taint`] — a forward dataflow fixpoint tracking where register
//!    values come from (memory, flushed lines, kernel space, cycle
//!    counters), feeding six detectors for the gadget patterns behind
//!    Spectre, Meltdown and the timing-channel attacks.
//! 3. [`invariants`] — a schema lint over the simulator's statistics
//!    inventory plus a post-run checker asserting counter consistency
//!    (`committed ≤ fetched`, `hits + misses = accesses`, monotonicity).
//!
//! The `uarch-lint` binary runs all passes over every workload in the
//! `workloads` crate and prints a findings table; the static verdicts are
//! locked in by regression tests (`tests/regression.rs`).
//!
//! # Example
//!
//! ```
//! use uarch_analysis::analyze_program;
//! use uarch_isa::GadgetKind;
//! use workloads::{spectre::spectre_v1, SpectreV1Params};
//!
//! let report = analyze_program(&spectre_v1(SpectreV1Params::default()));
//! assert!(report.kinds().contains(&GadgetKind::SpecBoundsBypass));
//! ```

#![warn(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod invariants;
pub mod report;
pub mod specwindow;
pub mod taint;

use std::collections::BTreeSet;

use uarch_isa::{GadgetKind, Program};

pub use callgraph::{CallGraph, CallSite, FnSummary, FuncId, FuncInfo};
pub use cfg::{path_condition, BasicBlock, Cfg, DomTree, LoopForest, NaturalLoop};
pub use invariants::{
    check_program_run, lint_bindings, lint_component_coverage, lint_feature_consumption,
    lint_schema, RunCheck, SchemaIssue,
};
pub use specwindow::SpecWindow;
pub use taint::{AnalysisCtx, Finding, TaintResult};

/// The combined static-analysis result for one program.
#[derive(Debug)]
pub struct ProgramReport {
    /// Program name.
    pub name: String,
    /// The control-flow graph.
    pub cfg: Cfg,
    /// The call graph (functions, call sites, matched returns).
    pub callgraph: CallGraph,
    /// Dominator tree over the CFG.
    pub dom: DomTree,
    /// Natural loops of the CFG.
    pub loops: LoopForest,
    /// Converged taint facts.
    pub taint: TaintResult,
    /// Detected gadgets, ordered by instruction index, decorated with
    /// severity metadata from the speculative-window model.
    pub findings: Vec<Finding>,
}

impl ProgramReport {
    /// The distinct gadget kinds found.
    pub fn kinds(&self) -> BTreeSet<GadgetKind> {
        self.findings.iter().map(|f| f.kind).collect()
    }
}

/// Runs the full static pipeline over one program: CFG, call graph,
/// dominators/loops, interprocedural taint, and the decorated detectors.
pub fn analyze_program(program: &Program) -> ProgramReport {
    analyze_program_with(program, &SpecWindow::table_ii())
}

/// [`analyze_program`] under an explicit speculative-window model.
pub fn analyze_program_with(program: &Program, window: &SpecWindow) -> ProgramReport {
    let cfg = Cfg::build(program);
    let callgraph = CallGraph::build(program, &cfg);
    let dom = DomTree::build(&cfg);
    let loops = LoopForest::build(&cfg, &dom);
    let taint = taint::propagate(program, &cfg, &callgraph, sim_cpu::KERNEL_SPACE_BASE);
    let findings = taint::detect(
        program,
        &AnalysisCtx {
            cfg: &cfg,
            cg: &callgraph,
            dom: &dom,
            loops: &loops,
            window,
        },
        &taint,
    );
    ProgramReport {
        name: program.name().to_string(),
        cfg,
        callgraph,
        dom,
        loops,
        taint,
        findings,
    }
}
