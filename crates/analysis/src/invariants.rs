//! Stat-schema lint and post-run counter-invariant checking.
//!
//! Two layers:
//!
//! 1. **Schema lint** ([`lint_schema`], [`lint_bindings`]) — static checks
//!    over the simulator's statistics inventory: names must be non-empty,
//!    printable, unique, and every statistic referenced by a declared
//!    invariant (see `sim_cpu::stat_invariants`) must actually exist.
//! 2. **Run check** ([`check_program_run`]) — runs a program on the
//!    simulator, snapshots the cumulative counters at regular intervals, and
//!    evaluates the declared invariants over the series (`committed ≤
//!    fetched`, `hits + misses = accesses`, per-sample monotonicity, ...).

use sim_cpu::{Core, CoreConfig};
use uarch_isa::Program;
use uarch_stats::invariant::check_series;
use uarch_stats::{
    ComponentId, ComponentRegistry, InvariantKind, Snapshot, StatInvariant, Violation,
};

/// A problem with the statistics schema itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaIssue {
    /// The offending statistic (or invariant) name.
    pub name: String,
    /// What is wrong with it.
    pub issue: String,
}

impl std::fmt::Display for SchemaIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.name, self.issue)
    }
}

/// Lints the flat statistic names of a snapshot: non-empty, printable ASCII
/// without whitespace, and free of duplicates (a duplicate name means two
/// components visit the same key and one silently shadows the other in any
/// name-indexed consumer).
pub fn lint_schema(names: &[String]) -> Vec<SchemaIssue> {
    let mut issues = Vec::new();
    let mut seen = std::collections::BTreeMap::new();
    for name in names {
        if name.is_empty() {
            issues.push(SchemaIssue {
                name: "<empty>".into(),
                issue: "empty stat name".into(),
            });
            continue;
        }
        if name
            .chars()
            .any(|c| c.is_whitespace() || !c.is_ascii_graphic())
        {
            issues.push(SchemaIssue {
                name: name.clone(),
                issue: "contains whitespace or non-printable characters".into(),
            });
        }
        *seen.entry(name.clone()).or_insert(0usize) += 1;
    }
    for (name, count) in seen {
        if count > 1 {
            issues.push(SchemaIssue {
                name,
                issue: format!("declared {count} times"),
            });
        }
    }
    issues
}

/// Lints the schema against the shared component registry: every statistic
/// name must resolve to one of the paper's 17 pipeline components
/// ([`ComponentRegistry::component_of`]), and every registered component
/// must own at least one statistic. Together the two directions assert that
/// the component prefixes *partition* the schema — no orphan stats, no
/// silent components.
///
/// Multi-core schemas (any name carrying a `core<N>.` scope) are linted
/// per scope: each core scope must replicate all 13 core-local components,
/// the 4 shared uncore components must appear exactly once — unscoped —
/// and a shared component leaking under a core scope (or a core-local
/// component left unscoped) is flagged. Flat single-core schemas keep the
/// original all-17 coverage rule.
pub fn lint_component_coverage(names: &[String]) -> Vec<SchemaIssue> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut issues = Vec::new();
    let mut per_scope: BTreeMap<Option<usize>, BTreeSet<ComponentId>> = BTreeMap::new();
    let multicore = names
        .iter()
        .any(|n| ComponentRegistry::scope_of(n).is_some());
    for name in names {
        match ComponentRegistry::component_of(name) {
            Some(c) => {
                let scope = ComponentRegistry::scope_of(name);
                if scope.is_some() && c.is_shared() {
                    issues.push(SchemaIssue {
                        name: name.clone(),
                        issue: "shared uncore component must not be replicated under a core scope"
                            .into(),
                    });
                }
                if multicore && scope.is_none() && !c.is_shared() {
                    issues.push(SchemaIssue {
                        name: name.clone(),
                        issue: "core-local component must carry a core<N> scope in a \
                                multi-core schema"
                            .into(),
                    });
                }
                per_scope.entry(scope).or_default().insert(c);
            }
            None => issues.push(SchemaIssue {
                name: name.clone(),
                issue: "prefix does not resolve to any registered pipeline component".into(),
            }),
        }
    }
    if multicore {
        let empty = BTreeSet::new();
        for (&scope, seen) in &per_scope {
            if let Some(n) = scope {
                for c in ComponentId::CORE_LOCAL {
                    if !seen.contains(&c) {
                        issues.push(SchemaIssue {
                            name: format!("core{n}.{}", c.name()),
                            issue: "core-local component owns no statistic in this core scope"
                                .into(),
                        });
                    }
                }
            }
        }
        let unscoped = per_scope.get(&None).unwrap_or(&empty);
        for c in ComponentId::SHARED {
            if !unscoped.contains(&c) {
                issues.push(SchemaIssue {
                    name: c.name().to_string(),
                    issue: "shared uncore component owns no statistic in the schema".into(),
                });
            }
        }
    } else {
        let seen = per_scope.remove(&None).unwrap_or_default();
        for c in ComponentId::ALL {
            if !seen.contains(&c) {
                issues.push(SchemaIssue {
                    name: c.name().to_string(),
                    issue: "registered component owns no statistic in the schema".into(),
                });
            }
        }
    }
    issues
}

/// Dead-feature lint: cross-checks the statistics schema against the set
/// of feature names a trained encoder actually consumes (e.g. the
/// 106-feature `RowEncoder` projection the perceptron uses).
///
/// Three directions:
///
/// 1. every consumed feature name must exist in the schema (a projection
///    onto a renamed or deleted stat silently reads garbage);
/// 2. every consumed feature must resolve to a registered pipeline
///    component — otherwise the replicated-detector accounting
///    (features-per-component) is wrong;
/// 3. every registered component that *owns* schema statistics should
///    contribute at least one consumed feature — a component whose stats
///    are all dead weight for the encoder is flagged so the schema does
///    not accrete write-only counters.
pub fn lint_feature_consumption(schema_names: &[String], consumed: &[String]) -> Vec<SchemaIssue> {
    use std::collections::BTreeSet;
    let schema: BTreeSet<&str> = schema_names.iter().map(String::as_str).collect();
    let mut issues = Vec::new();

    let mut consumed_components: BTreeSet<ComponentId> = BTreeSet::new();
    for name in consumed {
        if !schema.contains(name.as_str()) {
            issues.push(SchemaIssue {
                name: name.clone(),
                issue: "consumed feature does not exist in the statistics schema".into(),
            });
        }
        match ComponentRegistry::component_of(name) {
            Some(c) => {
                consumed_components.insert(c);
            }
            None => issues.push(SchemaIssue {
                name: name.clone(),
                issue: "consumed feature resolves to no registered pipeline component".into(),
            }),
        }
    }

    let mut owning_components: BTreeSet<ComponentId> = BTreeSet::new();
    for name in schema_names {
        if let Some(c) = ComponentRegistry::component_of(name) {
            owning_components.insert(c);
        }
    }
    for c in owning_components {
        if !consumed_components.contains(&c) {
            issues.push(SchemaIssue {
                name: c.name().to_string(),
                issue: "component's statistics are registered but never consumed by the encoder"
                    .into(),
            });
        }
    }
    issues
}

/// Every statistic referenced by `invariants` must exist in the snapshot —
/// an invariant that stops binding would otherwise rot silently.
pub fn lint_bindings(invariants: &[StatInvariant], snap: &Snapshot) -> Vec<SchemaIssue> {
    let mut issues = Vec::new();
    for inv in invariants {
        let refs: Vec<&String> = match &inv.kind {
            InvariantKind::Le(a, b) | InvariantKind::Eq(a, b) => vec![a, b],
            InvariantKind::SumEq(terms, total) => {
                terms.iter().chain(std::iter::once(total)).collect()
            }
            InvariantKind::Monotonic(s) => vec![s],
        };
        for name in refs {
            if snap.get(name).is_none() {
                issues.push(SchemaIssue {
                    name: inv.name.to_string(),
                    issue: format!("references unknown statistic `{name}`"),
                });
            }
        }
    }
    issues
}

/// Result of running a program and checking the counter invariants.
#[derive(Debug)]
pub struct RunCheck {
    /// Program name.
    pub name: String,
    /// Instructions actually committed.
    pub committed: u64,
    /// Number of cumulative snapshots taken.
    pub samples: usize,
    /// All invariant violations across the snapshot series.
    pub violations: Vec<Violation>,
}

impl RunCheck {
    /// Whether every invariant held in every sample.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs `program` for up to `max_insts` committed instructions, snapshotting
/// the cumulative statistics `samples` times, and evaluates `invariants`
/// over the series.
pub fn check_run(
    program: &Program,
    invariants: &[StatInvariant],
    max_insts: u64,
    samples: usize,
) -> RunCheck {
    let mut core = Core::new(CoreConfig::default(), program.clone());
    // Resolve the stat schema once; every snapshot in the series is a
    // value-only walk against it instead of re-deriving all 1159 names.
    let schema = core.stat_schema();
    let chunk = (max_insts / samples.max(1) as u64).max(1);
    let mut series = Vec::new();
    for _ in 0..samples.max(1) {
        let summary = core.run(chunk);
        series.push(Snapshot::with_schema(&schema, &core, ""));
        if summary.halted {
            break;
        }
    }
    RunCheck {
        name: program.name().to_string(),
        committed: series
            .last()
            .and_then(|s| s.get("commit.committedInsts"))
            .unwrap_or(0.0) as u64,
        samples: series.len(),
        violations: check_series(invariants, &series),
    }
}

/// [`check_run`] against the core's own declared invariants
/// (`sim_cpu::stat_invariants`).
pub fn check_program_run(program: &Program, max_insts: u64, samples: usize) -> RunCheck {
    check_run(program, &sim_cpu::stat_invariants(), max_insts, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_stats::{stat_group, Counter};

    #[test]
    fn schema_lint_flags_duplicates_and_bad_names() {
        let names = vec![
            "a.b".to_string(),
            "a.b".to_string(),
            "has space".to_string(),
            String::new(),
            "fine.name".to_string(),
        ];
        let issues = lint_schema(&names);
        assert!(issues.iter().any(|i| i.issue.contains("2 times")));
        assert!(issues.iter().any(|i| i.issue.contains("whitespace")));
        assert!(issues.iter().any(|i| i.issue.contains("empty")));
        assert_eq!(issues.len(), 3);
    }

    #[test]
    fn core_schema_is_clean_and_invariants_bind() {
        let core = Core::new(CoreConfig::default(), {
            let mut a = uarch_isa::Assembler::new("noop");
            a.halt();
            a.finish().unwrap()
        });
        let snap = Snapshot::of(&core, "");
        assert!(
            lint_schema(snap.names()).is_empty(),
            "{:?}",
            lint_schema(snap.names())
        );
        let bindings = lint_bindings(&sim_cpu::stat_invariants(), &snap);
        assert!(bindings.is_empty(), "{bindings:?}");
        let coverage = lint_component_coverage(snap.names());
        assert!(coverage.is_empty(), "{coverage:?}");
    }

    #[test]
    fn component_coverage_flags_orphans_and_silent_components() {
        // An orphan prefix and a schema too small to cover all 17
        // components both surface as issues.
        let names = vec!["bogus.stat".to_string(), "fetch.SquashCycles".to_string()];
        let issues = lint_component_coverage(&names);
        assert!(issues
            .iter()
            .any(|i| i.name == "bogus.stat" && i.issue.contains("does not resolve")));
        assert!(issues
            .iter()
            .any(|i| i.name == "decode" && i.issue.contains("owns no statistic")));
    }

    #[test]
    fn component_coverage_lints_multicore_schemas_per_scope() {
        // A well-formed two-core slice: both core scopes replicate two
        // core-local components; the uncore stays unscoped.
        let mut names: Vec<String> = Vec::new();
        for core in 0..2 {
            for c in uarch_stats::ComponentId::CORE_LOCAL {
                let base = if c.prefix().is_empty() {
                    "numCycles".to_string()
                } else {
                    format!("{}.stat", c.prefix())
                };
                names.push(format!("core{core}.{base}"));
            }
        }
        for c in uarch_stats::ComponentId::SHARED {
            names.push(format!("{}.stat", c.prefix()));
        }
        assert!(
            lint_component_coverage(&names).is_empty(),
            "{:?}",
            lint_component_coverage(&names)
        );

        // A shared component leaking under a core scope is flagged...
        let mut leaked = names.clone();
        leaked.push("core0.l2.demand_hits".to_string());
        assert!(lint_component_coverage(&leaked).iter().any(
            |i| i.name == "core0.l2.demand_hits" && i.issue.contains("must not be replicated")
        ));

        // ...as is a core-local stat escaping its scope in a multi-core
        // schema...
        let mut unscoped = names.clone();
        unscoped.push("fetch.SquashCycles".to_string());
        assert!(lint_component_coverage(&unscoped)
            .iter()
            .any(|i| i.name == "fetch.SquashCycles" && i.issue.contains("must carry a core")));

        // ...and a core scope missing one of the 13 replicated components.
        let holey: Vec<String> = names
            .iter()
            .filter(|n| *n != "core1.dcache.stat")
            .cloned()
            .collect();
        assert!(lint_component_coverage(&holey)
            .iter()
            .any(|i| i.name == "core1.L1 D-cache" && i.issue.contains("owns no statistic")));
    }

    #[test]
    fn feature_consumption_lint_flags_all_three_directions() {
        let schema = vec![
            "fetch.SquashCycles".to_string(),
            "fetch.Insts".to_string(),
            "commit.branches".to_string(),
        ];
        // Consumes one fetch stat, a stat the schema lacks, and a stat with
        // no registered component; commit's stats go unconsumed.
        let consumed = vec![
            "fetch.SquashCycles".to_string(),
            "fetch.Deleted".to_string(),
            "bogus.stat".to_string(),
        ];
        let issues = lint_feature_consumption(&schema, &consumed);
        assert!(issues
            .iter()
            .any(|i| i.name == "fetch.Deleted" && i.issue.contains("does not exist")));
        assert!(issues
            .iter()
            .any(|i| i.name == "bogus.stat" && i.issue.contains("no registered")));
        assert!(issues
            .iter()
            .any(|i| i.name == "commit" && i.issue.contains("never consumed")));
        // The consumed fetch component is not flagged.
        assert!(!issues.iter().any(|i| i.name == "fetch"));
    }

    #[test]
    fn feature_consumption_lint_is_clean_when_every_component_contributes() {
        let schema = vec!["fetch.Insts".to_string(), "commit.branches".to_string()];
        let consumed = schema.clone();
        assert!(lint_feature_consumption(&schema, &consumed).is_empty());
    }

    stat_group! {
        /// A component with an intentionally inconsistent counter pair.
        pub struct BrokenStats {
            /// Fetched instructions.
            pub fetched: Counter => "fetched",
            /// Committed instructions (corrupted to exceed fetched).
            pub committed: Counter => "committed",
        }
    }

    #[test]
    fn deliberately_broken_counter_is_caught() {
        let mut s = BrokenStats::default();
        s.fetched.add(100);
        s.committed.add(150); // corruption: committed > fetched
        let inv = [StatInvariant::le(
            "committed-le-fetched",
            "cpu.committed",
            "cpu.fetched",
        )];
        let series = [Snapshot::of(&s, "cpu")];
        let v = check_series(&inv, &series);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "committed-le-fetched");
    }
}
