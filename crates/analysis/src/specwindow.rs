//! Speculative-window model: how deep can transient execution run past a
//! mispredicted branch, and how fast can a gadget leak through it?
//!
//! The model is derived from the same configuration structs the simulator
//! runs on ([`sim_cpu::CoreConfig`], [`sim_mem::CacheConfig`],
//! [`sim_mem::DramConfig`]) rather than from free-standing magic numbers,
//! so retuning the simulated machine retunes the static analysis with it.
//!
//! Two quantities drive the findings report:
//!
//! - **Transient depth bound** — a mispredicted branch squashes when it
//!   resolves, so the transient window holds at most
//!   `min(rob_entries, issue_width × resolve_latency)` instructions. With
//!   the Table II machine (192-entry ROB, 8-wide issue) and a DRAM-miss
//!   branch operand, the ROB is the binding constraint: 192.
//! - **Leak bandwidth** — a covert channel moves
//!   [`GadgetKind::bits_per_iteration`] bits per attack iteration; the
//!   iteration cost is estimated from the enclosing training/probe loop
//!   size plus the channel's round-trip latency.

use sim_cpu::CoreConfig;
use sim_mem::{CacheConfig, DramConfig};
use uarch_isa::GadgetKind;

use crate::cfg::{Cfg, LoopForest};

/// Simulated core clock (the paper's 2.0 GHz machine).
pub const CLOCK_HZ: u64 = 2_000_000_000;

/// The speculative-window parameters of one machine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecWindow {
    /// Reorder-buffer capacity (hard cap on in-flight transients).
    pub rob_entries: usize,
    /// Issue width (transient instructions per cycle while waiting).
    pub issue_width: usize,
    /// Worst-case cycles for a branch whose operands miss to DRAM to
    /// resolve (L1 + L2 lookups + a full DRAM row activation round trip).
    pub resolve_latency: u64,
    /// Cycles between a faulting load reaching the ROB head and the fault
    /// being recognized (the Meltdown window).
    pub fault_delay: u64,
    /// Core clock in Hz.
    pub clock_hz: u64,
}

impl SpecWindow {
    /// Derives the window model from the simulator's configuration structs.
    pub fn from_config(core: &CoreConfig) -> SpecWindow {
        let l1 = CacheConfig::l1d();
        let l2 = CacheConfig::l2();
        let dram = DramConfig::default();
        let resolve_latency = (l1.tag_latency + l1.data_latency)
            + (l2.tag_latency + l2.data_latency)
            + (dram.t_rcd + dram.t_cas + dram.t_burst + dram.t_rp);
        SpecWindow {
            rob_entries: core.rob_entries,
            issue_width: core.issue_width,
            resolve_latency,
            fault_delay: core.fault_recognition_delay,
            clock_hz: CLOCK_HZ,
        }
    }

    /// The default Table II window.
    pub fn table_ii() -> SpecWindow {
        SpecWindow::from_config(&CoreConfig::default())
    }

    /// Upper bound on the number of instructions that can execute
    /// transiently past an unresolved branch: the ROB must hold them all,
    /// and the front end can only feed `issue_width` per cycle until the
    /// branch resolves.
    pub fn transient_limit(&self) -> usize {
        self.rob_entries
            .min(self.issue_width * self.resolve_latency as usize)
    }

    /// Severity score (0–100) for one finding.
    ///
    /// Starts from the gadget kind's base severity and adds structural
    /// aggravators: sitting inside a natural loop (repeatable — a training
    /// or probe loop), crossing a function boundary (survives call/return,
    /// so single-function review misses it), and a dependent pair shallow
    /// enough to fit the window twice over (robust to partial resolution).
    pub fn severity(
        &self,
        kind: GadgetKind,
        in_loop: bool,
        cross_function: bool,
        pair_depth: Option<usize>,
    ) -> u32 {
        let mut s = kind.base_severity();
        if in_loop {
            s += 8;
        }
        if cross_function {
            s += 5;
        }
        if pair_depth.is_some_and(|d| d <= self.transient_limit() / 2) {
            s += 5;
        }
        s.min(100)
    }

    /// Estimated leak bandwidth in bits per second for a finding of `kind`
    /// at `at`, assuming the gadget repeats at the cadence of its innermost
    /// enclosing loop (or once over the whole program when loop-free).
    ///
    /// One iteration costs roughly half a cycle per instruction in the loop
    /// body (the 8-wide core averages well above 1 IPC, but attack
    /// iterations are miss-dominated) plus two channel round trips
    /// (transmit + receive are both DRAM-latency events).
    pub fn leak_bandwidth(
        &self,
        kind: GadgetKind,
        cfg: &Cfg,
        loops: &LoopForest,
        at: usize,
        program_len: usize,
    ) -> u64 {
        let iter_insts = loops
            .innermost(cfg.block_of(at))
            .map(|l| {
                l.blocks
                    .iter()
                    .map(|&b| {
                        let blk = &cfg.blocks()[b];
                        blk.end - blk.start
                    })
                    .sum()
            })
            .unwrap_or(program_len);
        let est_cycles = (iter_insts.max(50) as u64) / 2 + 2 * self.resolve_latency;
        kind.bits_per_iteration() * self.clock_hz / est_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_window_is_rob_bound() {
        let w = SpecWindow::table_ii();
        assert_eq!(w.rob_entries, 192);
        assert_eq!(w.issue_width, 8);
        // L1(2) + L2(40) + DRAM(46) = 88 cycles; 8 × 88 ≫ 192.
        assert!(w.resolve_latency >= 50, "resolve={}", w.resolve_latency);
        assert_eq!(w.transient_limit(), 192);
    }

    #[test]
    fn narrow_machine_is_issue_bound() {
        let w = SpecWindow {
            rob_entries: 192,
            issue_width: 1,
            resolve_latency: 20,
            fault_delay: 10,
            clock_hz: CLOCK_HZ,
        };
        assert_eq!(w.transient_limit(), 20);
    }

    #[test]
    fn severity_orders_aggravated_above_plain() {
        let w = SpecWindow::table_ii();
        let plain = w.severity(GadgetKind::SpecBoundsBypass, false, false, None);
        let looped = w.severity(GadgetKind::SpecBoundsBypass, true, false, None);
        let full = w.severity(GadgetKind::SpecBoundsBypass, true, true, Some(10));
        assert!(plain < looped && looped < full);
        assert!(full <= 100);
        assert!(
            w.severity(GadgetKind::KernelRead, true, true, Some(1)) <= 100,
            "severity is clamped"
        );
    }
}
