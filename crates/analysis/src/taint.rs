//! Speculative-taint dataflow and gadget detection.
//!
//! A forward fixpoint over the CFG tracks, per register:
//!
//! - a **base value** ([`Base`]): a known constant, a pointer with a known
//!   region base (`Ptr`), or unknown (`Top`);
//! - **taint tags** ([`Taint`]): whether the value came from memory, from a
//!   statically-flushed cache line, from kernel-space data, the set of load
//!   instructions it originated from, and the set of `rdcycle` instructions
//!   it derives from.
//!
//! Implicit flows are approximated structurally: the assembler emits
//! structured code, so a forward conditional branch at `i` targeting `t > i+1`
//! guards the linear region `[i+1, t)`; definitions inside the region pick up
//! the branch condition's data taint (this is what catches the
//! predicate-encoding `leak-cmp` Spectre variant). Flushed cache lines are
//! collected from `clflush` instructions whose address resolves to a constant;
//! both sets feed back into the dataflow until the whole system stabilizes.
//!
//! On top of the fixpoint, six detectors flag the gadget patterns the attack
//! corpus uses (see [`GadgetKind`]): bounds-check-bypass speculation windows,
//! kernel-data dereferences, BTB injection, return-address hijacking, and
//! timed-load / timed-flush side-channel probes.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

use uarch_isa::{AluOp, GadgetKind, Inst, Program, Reg};

use crate::callgraph::CallGraph;
use crate::cfg::{path_condition, Cfg, DomTree, LoopForest};
use crate::specwindow::SpecWindow;

/// Cache line size assumed when matching flushed lines.
pub const LINE: u64 = 64;

/// Constants at or above this are treated as pointer-region bases when they
/// flow into address arithmetic (`base + unknown index`).
const PTR_MIN: i64 = 0x1000;

/// Abstract base value of a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base {
    /// Unknown.
    Top,
    /// Exactly this constant.
    Const(i64),
    /// `base + unknown offset` — the result of indexing off a known region.
    Ptr(u64),
}

/// Taint tags carried by a register value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Taint {
    /// Derived from a memory load.
    pub mem: bool,
    /// Derived (directly or transitively) from a statically-flushed line.
    pub flushed: bool,
    /// Derived from kernel-space data.
    pub kernel: bool,
    /// Load instructions (indices) this value originates from.
    pub loads: BTreeSet<usize>,
    /// `rdcycle` instructions (indices) this value derives from.
    pub cycles: BTreeSet<usize>,
}

impl Taint {
    fn is_empty_data(&self) -> bool {
        !self.mem && !self.flushed && !self.kernel && self.loads.is_empty()
    }

    /// Unions all tags; returns whether `self` changed.
    fn union_with(&mut self, o: &Taint) -> bool {
        let before = (
            self.mem,
            self.flushed,
            self.kernel,
            self.loads.len(),
            self.cycles.len(),
        );
        self.mem |= o.mem;
        self.flushed |= o.flushed;
        self.kernel |= o.kernel;
        self.loads.extend(o.loads.iter().copied());
        self.cycles.extend(o.cycles.iter().copied());
        before
            != (
                self.mem,
                self.flushed,
                self.kernel,
                self.loads.len(),
                self.cycles.len(),
            )
    }

    /// Unions only the data tags (everything but the cycle origins) — the
    /// part that propagates through implicit control dependences.
    fn union_data(&mut self, o: &Taint) {
        self.mem |= o.mem;
        self.flushed |= o.flushed;
        self.kernel |= o.kernel;
        self.loads.extend(o.loads.iter().copied());
    }
}

/// Abstract value of one register.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsVal {
    /// Base-value abstraction.
    pub base: Base,
    /// Taint tags.
    pub tags: Taint,
}

impl AbsVal {
    fn top() -> Self {
        AbsVal {
            base: Base::Top,
            tags: Taint::default(),
        }
    }

    fn join_with(&mut self, o: &AbsVal) -> bool {
        let mut changed = false;
        let joined = if self.base == o.base {
            self.base
        } else {
            Base::Top
        };
        if joined != self.base {
            self.base = joined;
            changed = true;
        }
        changed | self.tags.union_with(&o.tags)
    }
}

type State = Vec<AbsVal>;

fn initial_state() -> State {
    let mut s = vec![AbsVal::top(); Reg::COUNT];
    // r0 is pinned to zero by the assembler's implicit prologue, which runs
    // before any root (including the fault handler) can be entered.
    s[0] = AbsVal {
        base: Base::Const(0),
        tags: Taint::default(),
    };
    s
}

/// A detected gadget, with the severity metadata the speculative-window
/// model attaches ([`SpecWindow::severity`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// What pattern matched.
    pub kind: GadgetKind,
    /// Instruction index the finding anchors to.
    pub at: usize,
    /// Human-readable explanation.
    pub detail: String,
    /// Name of the function containing the anchor (from the call graph).
    pub func: String,
    /// Control-flow path condition guarding the anchor block (empty when
    /// reached unconditionally) — see [`path_condition`].
    pub path: String,
    /// Whether the anchor sits inside a natural loop (training/probe
    /// cadence).
    pub in_loop: bool,
    /// Whether the gadget's dependent pair spans a call/return boundary.
    pub cross_function: bool,
    /// Transient depth (instructions past the mispredicted branch) at which
    /// the second load of a dependent pair executes, when applicable.
    pub pair_depth: Option<usize>,
    /// Severity score, 0–100.
    pub severity: u32,
    /// Estimated leak bandwidth in bits per second.
    pub bandwidth: u64,
}

impl Finding {
    /// A bare finding; the severity metadata is attached by
    /// [`detect`]'s decoration pass.
    fn new(kind: GadgetKind, at: usize, detail: String) -> Finding {
        Finding {
            kind,
            at,
            detail,
            func: String::new(),
            path: String::new(),
            in_loop: false,
            cross_function: false,
            pair_depth: None,
            severity: 0,
            bandwidth: 0,
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} sev={}] @{} in {}: {}",
            self.kind, self.severity, self.at, self.func, self.detail
        )
    }
}

/// The converged dataflow facts.
#[derive(Debug)]
pub struct TaintResult {
    /// Pre-state (abstract register file) before each instruction.
    pub pre: Vec<State>,
    /// Cache lines (address / [`LINE`]) flushed at statically-resolved
    /// addresses.
    pub flushed_lines: BTreeSet<u64>,
    /// `clflush` sites whose address did not resolve to a constant (flush
    /// loops after the first iteration, pointer-relative flushes).
    pub unresolved_flushes: usize,
}

fn eval(op: AluOp, x: i64, y: i64) -> Option<i64> {
    Some(match op {
        AluOp::Add => x.wrapping_add(y),
        AluOp::Sub => x.wrapping_sub(y),
        AluOp::Mul => x.wrapping_mul(y),
        AluOp::Div => {
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        AluOp::Rem => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        AluOp::And => x & y,
        AluOp::Or => x | y,
        AluOp::Xor => x ^ y,
        AluOp::Shl => ((x as u64) << (y as u64 & 63)) as i64,
        AluOp::Shr => ((x as u64) >> (y as u64 & 63)) as i64,
        AluOp::Sar => x >> (y as u64 & 63),
        AluOp::Slt => (x < y) as i64,
        AluOp::Sltu => ((x as u64) < (y as u64)) as i64,
    })
}

fn alu_base(op: AluOp, a: Base, b: Base) -> Base {
    if let (Base::Const(x), Base::Const(y)) = (a, b) {
        return eval(op, x, y).map_or(Base::Top, Base::Const);
    }
    match op {
        AluOp::Add => match (a, b) {
            (Base::Ptr(p), Base::Const(k)) | (Base::Const(k), Base::Ptr(p)) => {
                Base::Ptr(p.wrapping_add_signed(k))
            }
            (Base::Ptr(p), _) | (_, Base::Ptr(p)) => Base::Ptr(p),
            // `base + unknown index` with a pointer-sized constant base:
            // the canonical array-indexing idiom.
            (Base::Const(c), _) | (_, Base::Const(c)) if c >= PTR_MIN => Base::Ptr(c as u64),
            _ => Base::Top,
        },
        AluOp::Sub => match (a, b) {
            (Base::Ptr(p), Base::Const(k)) => Base::Ptr(p.wrapping_add_signed(-k)),
            _ => Base::Top,
        },
        _ => Base::Top,
    }
}

/// `(possible address, exact)`: exact means the full address is a known
/// constant; inexact means only the region base is known (`Ptr`).
fn abs_addr(v: &AbsVal, offset: i64) -> (Option<u64>, bool) {
    match v.base {
        Base::Const(c) => (Some(c.wrapping_add(offset) as u64), true),
        Base::Ptr(p) => (Some(p.wrapping_add_signed(offset)), false),
        Base::Top => (None, false),
    }
}

struct Ctx<'a> {
    program: &'a Program,
    kernel_base: u64,
    flushed: &'a BTreeSet<u64>,
    implicit: &'a [Taint],
}

impl Ctx<'_> {
    fn is_kernel(&self, addr: u64) -> bool {
        addr >= self.kernel_base || self.program.is_kernel_addr(addr)
    }

    fn transfer(&self, s: &mut State, idx: usize) {
        let inst = self.program.code()[idx];
        let r = |s: &State, reg: Reg| s[reg.index()].clone();
        let new = match inst {
            Inst::Li { imm, .. } => {
                let mut tags = Taint::default();
                tags.union_data(&self.implicit[idx]);
                Some(AbsVal {
                    base: Base::Const(imm),
                    tags,
                })
            }
            Inst::Alu { op, ra, rb, .. } => {
                let (a, b) = (r(s, ra), r(s, rb));
                let mut tags = a.tags.clone();
                tags.union_with(&b.tags);
                tags.union_data(&self.implicit[idx]);
                Some(AbsVal {
                    base: alu_base(op, a.base, b.base),
                    tags,
                })
            }
            Inst::AluI { op, ra, imm, .. } => {
                let a = r(s, ra);
                let mut tags = a.tags.clone();
                tags.union_data(&self.implicit[idx]);
                Some(AbsVal {
                    base: alu_base(op, a.base, Base::Const(imm)),
                    tags,
                })
            }
            Inst::Falu { ra, rb, .. } => {
                let mut tags = r(s, ra).tags;
                tags.union_with(&r(s, rb).tags);
                tags.union_data(&self.implicit[idx]);
                Some(AbsVal {
                    base: Base::Top,
                    tags,
                })
            }
            Inst::Load { base, offset, .. } => {
                let a = r(s, base);
                let (addr, exact) = abs_addr(&a, offset);
                let mut tags = Taint {
                    mem: true,
                    ..Taint::default()
                };
                tags.loads.insert(idx);
                tags.flushed = a.tags.flushed
                    || (exact && addr.is_some_and(|ad| self.flushed.contains(&(ad / LINE))));
                tags.kernel = a.tags.kernel || addr.is_some_and(|ad| self.is_kernel(ad));
                tags.union_data(&self.implicit[idx]);
                Some(AbsVal {
                    base: Base::Top,
                    tags,
                })
            }
            Inst::RdCycle { .. } => {
                let mut tags = Taint::default();
                tags.cycles.insert(idx);
                Some(AbsVal {
                    base: Base::Top,
                    tags,
                })
            }
            _ => None,
        };
        if let (Some(v), Some(rd)) = (new, inst.dest()) {
            s[rd.index()] = v;
        }
    }
}

/// Runs the dataflow to a fixpoint and returns the pre-state of every
/// instruction plus the resolved flush set.
///
/// `ret` successors are the call graph's matched return targets
/// ([`CallGraph::ret_successors`]) rather than the CFG's global return-site
/// approximation, so a value tainted inside one callee flows only to the
/// continuations of call sites that can actually invoke it.
pub fn propagate(program: &Program, cfg: &Cfg, cg: &CallGraph, kernel_base: u64) -> TaintResult {
    let code = program.code();
    let n = code.len();
    let mut flushed: BTreeSet<u64> = BTreeSet::new();
    let mut implicit: Vec<Taint> = vec![Taint::default(); n];
    let mut pre: Vec<State> = Vec::new();
    let mut unresolved = 0;

    // Outer loop: the flush set and the implicit-flow map feed back into the
    // dataflow. Base values never depend on tags, so the flush set is stable
    // after the first round; implicit tags grow monotonically, so this
    // converges (the bound is a safety net).
    for _ in 0..8 {
        let ctx = Ctx {
            program,
            kernel_base,
            flushed: &flushed,
            implicit: &implicit,
        };
        pre = fixpoint(&ctx, cfg, cg, n);

        let mut new_flushed = BTreeSet::new();
        unresolved = 0;
        for (i, inst) in code.iter().enumerate() {
            if let Inst::Flush { base, offset } = *inst {
                match abs_addr(&pre[i][base.index()], offset) {
                    (Some(addr), true) => {
                        new_flushed.insert(addr / LINE);
                    }
                    _ => unresolved += 1,
                }
            }
        }

        let mut new_implicit = vec![Taint::default(); n];
        for (i, inst) in code.iter().enumerate() {
            if let Inst::Branch { ra, rb, target, .. } = *inst {
                if target > i + 1 && target <= n {
                    let mut t = Taint::default();
                    t.union_data(&pre[i][ra.index()].tags);
                    t.union_data(&pre[i][rb.index()].tags);
                    if !t.is_empty_data() {
                        for item in new_implicit.iter_mut().take(target).skip(i + 1) {
                            item.union_data(&t);
                        }
                    }
                }
            }
        }

        if new_flushed == flushed && new_implicit == implicit {
            break;
        }
        flushed = new_flushed;
        implicit = new_implicit;
    }

    TaintResult {
        pre,
        flushed_lines: flushed,
        unresolved_flushes: unresolved,
    }
}

fn fixpoint(ctx: &Ctx<'_>, cfg: &Cfg, cg: &CallGraph, n: usize) -> Vec<State> {
    let blocks = cfg.blocks();
    let code = ctx.program.code();
    let mut entry: Vec<Option<State>> = vec![None; blocks.len()];
    for &root in cfg.roots() {
        entry[root] = Some(initial_state());
    }
    let mut work: Vec<usize> = cfg.roots().to_vec();
    while let Some(b) = work.pop() {
        let Some(state) = entry[b].clone() else {
            continue;
        };
        let mut s = state;
        for i in blocks[b].start..blocks[b].end {
            ctx.transfer(&mut s, i);
        }
        // A `ret` flows only to its call-graph-matched return sites; every
        // other terminator uses the CFG edges.
        let succs: Vec<usize> = if matches!(code[blocks[b].terminator()], Inst::Ret) {
            cg.ret_successors(b)
        } else {
            blocks[b].succs.clone()
        };
        for &succ in &succs {
            match &mut entry[succ] {
                Some(dst) => {
                    let mut changed = false;
                    for (d, v) in dst.iter_mut().zip(&s) {
                        changed |= d.join_with(v);
                    }
                    if changed {
                        work.push(succ);
                    }
                }
                slot @ None => {
                    *slot = Some(s.clone());
                    work.push(succ);
                }
            }
        }
    }

    // Per-instruction pre-states: walk each block from its converged entry.
    // Blocks never reached by the dataflow use the all-unknown initial state
    // (conservative, keeps `pre` total).
    let mut pre = vec![initial_state(); n];
    for (b, blk) in blocks.iter().enumerate() {
        let mut s = entry[b].clone().unwrap_or_else(initial_state);
        for (i, slot) in pre.iter_mut().enumerate().take(blk.end).skip(blk.start) {
            *slot = s.clone();
            ctx.transfer(&mut s, i);
        }
    }
    pre
}

/// The guarded region of a forward conditional branch at `i` targeting `t`:
/// the linear shadow `[i+1, t)` extended through `call`s into their callee
/// bodies (speculation past the check follows calls too — the `fn-leak`
/// Spectre variant leaks from a called function).
fn guarded_region(cfg: &Cfg, code: &[Inst], i: usize, t: usize) -> BTreeSet<usize> {
    let mut region: BTreeSet<usize> = (i + 1..t.min(code.len())).collect();
    let mut frontier: Vec<usize> = region
        .iter()
        .filter_map(|&j| match code[j] {
            Inst::Call { target } if target < code.len() => Some(target),
            _ => None,
        })
        .collect();
    while let Some(callee) = frontier.pop() {
        for j in cfg.span_from(cfg.block_of(callee), code) {
            if region.insert(j) {
                if let Inst::Call { target } = code[j] {
                    if target < code.len() {
                        frontier.push(target);
                    }
                }
            }
        }
    }
    region
}

/// Instruction indices a `call` at `c` can lead into (its callee, followed
/// transitively, without traversing return edges).
fn callee_span(cfg: &Cfg, code: &[Inst], c: usize) -> Vec<usize> {
    match code[c] {
        Inst::Call { target } if target < code.len() => cfg.span_from(cfg.block_of(target), code),
        _ => Vec::new(),
    }
}

/// The structural analyses [`detect`] consumes alongside the taint facts.
pub struct AnalysisCtx<'a> {
    /// The control-flow graph.
    pub cfg: &'a Cfg,
    /// The call graph (matched returns, function names).
    pub cg: &'a CallGraph,
    /// Dominator tree (path conditions).
    pub dom: &'a DomTree,
    /// Natural loops (training/probe cadence).
    pub loops: &'a LoopForest,
    /// The speculative-window model (severity, bandwidth, depth bound).
    pub window: &'a SpecWindow,
}

/// Deepest call stack the transient walk tracks (the RAS depth of the
/// Table II machine — deeper speculation returns through the RSB anyway).
const TRANSIENT_STACK_CAP: usize = 16;

/// Safety valve on the transient walk's total work.
const TRANSIENT_BUDGET: usize = 50_000;

/// The set of instructions transiently reachable from `from` within
/// `limit` instructions, mapped to their minimum transient depth.
///
/// The walk is an interprocedural BFS: calls push the fall-through on a
/// bounded return stack and enter the callee; `ret` pops the stack (or,
/// bare, falls back to the call graph's matched return sites); branches
/// fork both ways (transient execution may follow either arm); `fence`
/// and `halt` terminate the path. Unlike [`guarded_region`], the walk
/// crosses matched call/return boundaries — this is what lets the
/// bounds-bypass detector pair a secret load in a callee with a probe
/// load in its caller.
fn transient_region(
    cfg: &Cfg,
    cg: &CallGraph,
    code: &[Inst],
    from: usize,
    limit: usize,
) -> BTreeMap<usize, usize> {
    let n = code.len();
    let mut depth_of: BTreeMap<usize, usize> = BTreeMap::new();
    let mut seen: HashSet<(usize, Vec<usize>)> = HashSet::new();
    let mut queue: VecDeque<(usize, usize, Vec<usize>)> = VecDeque::new();
    if from < n {
        queue.push_back((from, 0, Vec::new()));
    }
    let mut budget = TRANSIENT_BUDGET;
    while let Some((idx, depth, stack)) = queue.pop_front() {
        if budget == 0 {
            break;
        }
        budget -= 1;
        if !seen.insert((idx, stack.clone())) {
            continue;
        }
        let slot = depth_of.entry(idx).or_insert(depth);
        *slot = (*slot).min(depth);
        if depth >= limit {
            continue;
        }
        let d = depth + 1;
        let push = |queue: &mut VecDeque<_>, t: usize, st: Vec<usize>| {
            if t < n {
                queue.push_back((t, d, st));
            }
        };
        match code[idx] {
            // A fence drains the window; a halt ends the program.
            Inst::Fence | Inst::Halt => {}
            Inst::Branch { target, .. } => {
                push(&mut queue, idx + 1, stack.clone());
                push(&mut queue, target, stack);
            }
            Inst::Jump { target } => push(&mut queue, target, stack),
            Inst::JumpInd { .. } => {
                for &b in cfg.address_taken() {
                    push(&mut queue, cfg.blocks()[b].start, stack.clone());
                }
            }
            Inst::Call { target } => {
                if stack.len() < TRANSIENT_STACK_CAP {
                    let mut st = stack;
                    st.push(idx + 1);
                    push(&mut queue, target, st);
                }
            }
            Inst::CallInd { .. } => {
                if stack.len() < TRANSIENT_STACK_CAP {
                    for &b in cfg.address_taken() {
                        let mut st = stack.clone();
                        st.push(idx + 1);
                        push(&mut queue, cfg.blocks()[b].start, st);
                    }
                }
            }
            Inst::Ret => {
                let mut st = stack;
                if let Some(r) = st.pop() {
                    push(&mut queue, r, st);
                } else {
                    // Entered transiently without a matching call: return
                    // to the matched sites of the containing function.
                    for t in cg.ret_successors(cfg.block_of(idx)) {
                        push(&mut queue, cfg.blocks()[t].start, Vec::new());
                    }
                }
            }
            _ => push(&mut queue, idx + 1, stack),
        }
    }
    depth_of
}

/// Runs all gadget detectors over the converged dataflow facts, then
/// decorates every finding with its function, path condition, loop
/// membership, severity and estimated bandwidth.
pub fn detect(program: &Program, ctx: &AnalysisCtx<'_>, taint: &TaintResult) -> Vec<Finding> {
    let (cfg, cg) = (ctx.cfg, ctx.cg);
    let code = program.code();
    let pre = &taint.pre;
    let mut findings: Vec<Finding> = Vec::new();

    // Timed-load / timed-flush probes: a subtraction of two distinct cycle
    // counter reads whose program-order window brackets a load or a flush.
    for (i, inst) in code.iter().enumerate() {
        let Inst::Alu {
            op: AluOp::Sub,
            ra,
            rb,
            ..
        } = *inst
        else {
            continue;
        };
        let ca = &pre[i][ra.index()].tags.cycles;
        let cb = &pre[i][rb.index()].tags.cycles;
        let mut best: Option<(usize, usize)> = None;
        for &a in ca {
            for &b in cb {
                if a != b {
                    let w = (a.min(b), a.max(b));
                    if best.is_none_or(|cur| w.1 - w.0 < cur.1 - cur.0) {
                        best = Some(w);
                    }
                }
            }
        }
        let Some((lo, hi)) = best else { continue };
        let window = &code[lo + 1..hi];
        if window.iter().any(|x| matches!(x, Inst::Load { .. })) {
            findings.push(Finding::new(
                GadgetKind::TimedLoad,
                i,
                format!("cycle delta of rdcycle@{lo}/rdcycle@{hi} brackets a load"),
            ));
        }
        if window.iter().any(|x| matches!(x, Inst::Flush { .. })) {
            findings.push(Finding::new(
                GadgetKind::TimedFlush,
                i,
                format!("cycle delta of rdcycle@{lo}/rdcycle@{hi} brackets a clflush"),
            ));
        }
    }

    // Kernel reads: a load whose address derives from kernel-space data (the
    // transmitting half of a Meltdown gadget). The first, faulting load is
    // what plants the kernel tag.
    for (i, inst) in code.iter().enumerate() {
        let Inst::Load { base, .. } = *inst else {
            continue;
        };
        if pre[i][base.index()].tags.kernel {
            findings.push(Finding::new(
                GadgetKind::KernelRead,
                i,
                "load address derives from kernel-space data".to_string(),
            ));
        }
    }

    // BTB injection: an indirect call/jump whose target came from memory —
    // the attacker-reachable half of a SpectreV2 site.
    for (i, inst) in code.iter().enumerate() {
        let base = match *inst {
            Inst::CallInd { base } | Inst::JumpInd { base } => base,
            _ => continue,
        };
        if pre[i][base.index()].tags.mem {
            findings.push(Finding::new(
                GadgetKind::BtbInjection,
                i,
                "indirect control target loaded from memory".to_string(),
            ));
        }
    }

    // Return hijack: a `setret` inside a called function whose replacement
    // target is not the calling site's fall-through (SpectreRSB's unmatched
    // call/return pair). An unresolvable target is treated as a hijack.
    let calls: Vec<usize> = (0..code.len())
        .filter(|&c| matches!(code[c], Inst::Call { .. }))
        .collect();
    for (i, inst) in code.iter().enumerate() {
        let Inst::SetRet { base } = *inst else {
            continue;
        };
        let legit = match pre[i][base.index()].base {
            Base::Const(t) => calls
                .iter()
                .any(|&c| t as usize == c + 1 && callee_span(cfg, code, c).contains(&i)),
            _ => false,
        };
        if !legit {
            findings.push(Finding::new(
                GadgetKind::RetHijack,
                i,
                "return address replaced with a non-return-site target".to_string(),
            ));
        }
    }

    // Speculative bounds-check bypass: a forward conditional branch whose
    // resolution is slow (its condition, or a load in its shadow, depends on
    // a statically-flushed line) guarding a dependent load pair — and no
    // fence inside the window.
    for (i, inst) in code.iter().enumerate() {
        let Inst::Branch { ra, rb, target, .. } = *inst else {
            continue;
        };
        if target <= i + 1 {
            continue; // backward or degenerate: loop branches don't guard
        }
        let region = guarded_region(cfg, code, i, target);
        let cond_slow = pre[i][ra.index()].tags.flushed || pre[i][rb.index()].tags.flushed;
        let shadow_flushed_load = region.iter().any(|&j| {
            let Inst::Load { base, offset, .. } = code[j] else {
                return false;
            };
            let v = &pre[j][base.index()];
            let (addr, exact) = abs_addr(v, offset);
            v.tags.flushed
                || (exact && addr.is_some_and(|ad| taint.flushed_lines.contains(&(ad / LINE))))
        });
        if !(cond_slow || shadow_flushed_load) {
            continue;
        }
        if region.iter().any(|&j| matches!(code[j], Inst::Fence)) {
            continue; // serialized: the window is closed
        }
        // Pair search over the *transient* region: everything reachable
        // within the speculative window, crossing matched call/return
        // boundaries. The guarded region above decides whether the branch
        // is a slow, unfenced guard at all; the transient walk decides how
        // far the misprediction can carry a dependent pair.
        let transient = transient_region(cfg, cg, code, i + 1, ctx.window.transient_limit());
        // A realizable pair must execute l1 before l2 *within one window*:
        // l1's transient depth must be strictly below l2's. (Taint sets
        // also carry dependences through the enclosing architectural loop,
        // where l1 sits later in the trace — those are not transient
        // pairs.)
        let pair = transient.iter().find_map(|(&l2, &d2)| {
            let Inst::Load { base, .. } = code[l2] else {
                return None;
            };
            pre[l2][base.index()]
                .tags
                .loads
                .iter()
                .find(|l1| transient.get(l1).is_some_and(|&d1| d1 < d2))
                .map(|&l1| (l1, l2))
        });
        if let Some((l1, l2)) = pair {
            let cross = cg.name_of_block(cfg.block_of(l1)) != cg.name_of_block(cfg.block_of(l2))
                || cg.name_of_block(cfg.block_of(i)) != cg.name_of_block(cfg.block_of(l2));
            let mut f = Finding::new(
                GadgetKind::SpecBoundsBypass,
                i,
                format!("slow guard shadows dependent loads @{l1} -> @{l2} with no fence"),
            );
            f.cross_function = cross;
            f.pair_depth = transient.get(&l2).copied();
            findings.push(f);
        }
    }

    // Decoration: every finding gets its function, path condition, loop
    // membership, severity score and bandwidth estimate.
    for f in &mut findings {
        let b = cfg.block_of(f.at);
        f.func = cg.name_of_block(b).to_string();
        f.path = path_condition(cfg, ctx.dom, code, b);
        f.in_loop = ctx.loops.innermost(b).is_some();
        f.severity = ctx
            .window
            .severity(f.kind, f.in_loop, f.cross_function, f.pair_depth);
        f.bandwidth = ctx
            .window
            .leak_bandwidth(f.kind, cfg, ctx.loops, f.at, code.len());
    }

    findings.sort_by_key(|f| (f.at, f.kind));
    findings.dedup();
    findings
}

/// Convenience: full pipeline over one program, building the structural
/// analyses (call graph, dominators, loops, window model) internally.
pub fn analyze(program: &Program, cfg: &Cfg) -> (TaintResult, Vec<Finding>) {
    let cg = CallGraph::build(program, cfg);
    let dom = DomTree::build(cfg);
    let loops = LoopForest::build(cfg, &dom);
    let window = SpecWindow::table_ii();
    let taint = propagate(program, cfg, &cg, sim_cpu::KERNEL_SPACE_BASE);
    let findings = detect(
        program,
        &AnalysisCtx {
            cfg,
            cg: &cg,
            dom: &dom,
            loops: &loops,
            window: &window,
        },
        &taint,
    );
    (taint, findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_isa::{AsmError, Assembler, Reg};

    fn kinds(p: &Program) -> BTreeSet<GadgetKind> {
        let cfg = Cfg::build(p);
        let (_, findings) = analyze(p, &cfg);
        findings.into_iter().map(|f| f.kind).collect()
    }

    const BOUND: i64 = 0x2000;
    const ARR: i64 = 0x3000;
    const PROBE: i64 = 0x8000;

    fn mini_spectre(fenced: bool) -> Program {
        let mut a = Assembler::new(if fenced {
            "mini-fenced"
        } else {
            "mini-spectre"
        });
        a.data(BOUND as u64, 8u64.to_le_bytes().to_vec());
        a.data(ARR as u64, vec![1u8; 64]);
        a.data(PROBE as u64, vec![0u8; 64 * 256]);
        let skip = a.label();
        let (x, y, size) = (Reg::R1, Reg::R2, Reg::R3);
        a.li(x, 3);
        a.li(Reg::R5, BOUND);
        a.flush(Reg::R5, 0);
        a.load(size, Reg::R5, 0);
        a.bge(x, size, skip);
        if fenced {
            a.fence();
        }
        a.li(Reg::R5, ARR);
        a.add(Reg::R5, Reg::R5, x);
        a.loadb(y, Reg::R5, 0);
        a.shli(y, y, 6);
        a.addi(y, y, PROBE);
        a.loadb(Reg::R6, y, 0);
        a.bind(skip);
        a.halt();
        a.finish().expect("mini-spectre assembles")
    }

    #[test]
    fn mini_spectre_is_flagged() {
        assert_eq!(
            kinds(&mini_spectre(false)),
            BTreeSet::from([GadgetKind::SpecBoundsBypass])
        );
    }

    #[test]
    fn fence_closes_the_window() {
        assert!(kinds(&mini_spectre(true)).is_empty());
    }

    #[test]
    fn kernel_dependent_load_is_flagged() -> Result<(), AsmError> {
        let mut a = Assembler::new("mini-meltdown");
        a.kernel_data(0x8000_0000, vec![42u8; 8]);
        a.data(PROBE as u64, vec![0u8; 64 * 256]);
        let (s, y) = (Reg::R1, Reg::R2);
        a.li(s, 0x8000_0000u32 as i64);
        a.loadb(y, s, 0);
        a.shli(y, y, 6);
        a.addi(y, y, PROBE);
        a.loadb(Reg::R3, y, 0);
        a.halt();
        let p = a.finish()?;
        assert_eq!(kinds(&p), BTreeSet::from([GadgetKind::KernelRead]));
        Ok(())
    }

    #[test]
    fn memory_loaded_indirect_target_is_flagged() -> Result<(), AsmError> {
        let mut a = Assembler::new("mini-btb");
        a.data(0x2000, vec![0u8; 8]);
        let f = a.label();
        a.li(Reg::R1, 0x2000);
        a.load(Reg::R2, Reg::R1, 0);
        a.call_ind(Reg::R2);
        a.halt();
        a.bind(f);
        a.ret();
        let p = a.finish()?;
        assert_eq!(kinds(&p), BTreeSet::from([GadgetKind::BtbInjection]));
        Ok(())
    }

    #[test]
    fn register_indirect_target_is_clean() -> Result<(), AsmError> {
        let mut a = Assembler::new("mini-ind-clean");
        let f = a.label();
        a.la(Reg::R2, f);
        a.call_ind(Reg::R2);
        a.halt();
        a.bind(f);
        a.ret();
        let p = a.finish()?;
        assert!(kinds(&p).is_empty());
        Ok(())
    }

    #[test]
    fn unmatched_set_ret_is_flagged_and_matched_one_is_not() -> Result<(), AsmError> {
        let mut bad = Assembler::new("mini-rsb");
        let (f, elsewhere) = (bad.label(), bad.label());
        bad.la(Reg::R9, elsewhere);
        bad.call(f);
        bad.nop();
        bad.bind(elsewhere);
        bad.halt();
        bad.bind(f);
        bad.set_ret(Reg::R9);
        bad.ret();
        let p = bad.finish()?;
        assert_eq!(kinds(&p), BTreeSet::from([GadgetKind::RetHijack]));

        let mut ok = Assembler::new("mini-rsb-ok");
        let f = ok.label();
        let back = ok.label();
        ok.la(Reg::R9, back);
        ok.call(f);
        ok.bind(back);
        ok.halt();
        ok.bind(f);
        ok.set_ret(Reg::R9); // restores the genuine return site
        ok.ret();
        let p = ok.finish()?;
        assert!(kinds(&p).is_empty());
        Ok(())
    }

    #[test]
    fn timed_load_and_timed_flush_probes() -> Result<(), AsmError> {
        let mut a = Assembler::new("mini-timer");
        a.data(0x2000, vec![0u8; 64]);
        a.li(Reg::R1, 0x2000);
        a.rdcycle(Reg::R2);
        a.loadb(Reg::R3, Reg::R1, 0);
        a.rdcycle(Reg::R4);
        a.sub(Reg::R4, Reg::R4, Reg::R2);
        a.rdcycle(Reg::R5);
        a.flush(Reg::R1, 0);
        a.rdcycle(Reg::R6);
        a.sub(Reg::R6, Reg::R6, Reg::R5);
        a.halt();
        let p = a.finish()?;
        assert_eq!(
            kinds(&p),
            BTreeSet::from([GadgetKind::TimedLoad, GadgetKind::TimedFlush])
        );
        Ok(())
    }

    #[test]
    fn benign_pointer_chasing_is_clean() -> Result<(), AsmError> {
        // Dependent loads under a forward branch, but nothing is flushed and
        // no timer brackets them: ordinary linked-list code.
        let mut a = Assembler::new("mini-chase");
        a.data(0x2000, 0x2000u64.to_le_bytes().to_vec());
        let done = a.label();
        let top = a.label();
        a.li(Reg::R1, 0x2000);
        a.li(Reg::R2, 100);
        a.bind(top);
        a.load(Reg::R1, Reg::R1, 0);
        a.load(Reg::R3, Reg::R1, 8);
        a.beq(Reg::R3, Reg::R0, done);
        a.addi(Reg::R2, Reg::R2, -1);
        a.bnez(Reg::R2, top);
        a.bind(done);
        a.halt();
        let p = a.finish()?;
        assert!(kinds(&p).is_empty());
        Ok(())
    }

    #[test]
    fn leak_comparison_implicit_flow_is_caught() -> Result<(), AsmError> {
        // The predicate-encoding variant: the secret byte only influences
        // which constant is materialized, never flows into the address as
        // data.
        let mut a = Assembler::new("mini-leak-cmp");
        a.data(BOUND as u64, 8u64.to_le_bytes().to_vec());
        a.data(ARR as u64, vec![1u8; 64]);
        a.data(PROBE as u64, vec![0u8; 64 * 256]);
        let skip = a.label();
        let neq = a.label();
        let (x, y, size) = (Reg::R1, Reg::R2, Reg::R3);
        a.li(x, 3);
        a.li(Reg::R5, BOUND);
        a.flush(Reg::R5, 0);
        a.load(size, Reg::R5, 0);
        a.bge(x, size, skip);
        a.li(Reg::R5, ARR);
        a.add(Reg::R5, Reg::R5, x);
        a.loadb(y, Reg::R5, 0);
        a.li(Reg::R6, 84);
        a.li(Reg::R7, 0);
        a.bne(y, Reg::R6, neq);
        a.li(Reg::R7, 1);
        a.bind(neq);
        a.shli(Reg::R7, Reg::R7, 6);
        a.addi(Reg::R7, Reg::R7, PROBE);
        a.loadb(Reg::R8, Reg::R7, 0);
        a.bind(skip);
        a.halt();
        let p = a.finish()?;
        assert_eq!(kinds(&p), BTreeSet::from([GadgetKind::SpecBoundsBypass]));
        Ok(())
    }
}
