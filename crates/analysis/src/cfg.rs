//! Control-flow graph construction over [`Program`]s.
//!
//! Basic blocks are maximal straight-line instruction runs; leaders are the
//! entry point, every static branch/jump/call target, every instruction
//! following a control transfer or `halt`, the fault handler, and — in
//! programs that contain computed transfers (`jmp [r]` / `call [r]` /
//! `setret`) — every code index that appears as an `li` immediate (a
//! conservative address-taken approximation: `la`-style label
//! materialization compiles to `li`, so any such index may become an
//! indirect target). Programs without computed transfers skip the
//! address-taken scan entirely, since small data constants would otherwise
//! masquerade as code pointers and needlessly split blocks.
//!
//! Indirect control flow is approximated:
//!
//! - `ret` edges go to the fall-through block of every `call`/`call-ind`
//!   site (the return-site approximation).
//! - `jmp [r]` / `call [r]` edges go to every address-taken block.
//!
//! Reachability is computed from the entry block, the fault handler, and all
//! address-taken blocks, so code only enterable through an indirect transfer
//! or a fault is still considered live.

use uarch_isa::{Inst, Program};

/// One basic block: the half-open instruction range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the block's first instruction (its leader).
    pub start: usize,
    /// One past the block's last instruction.
    pub end: usize,
    /// Successor blocks, as indices into [`Cfg::blocks`].
    pub succs: Vec<usize>,
}

impl BasicBlock {
    /// Index of the block's terminating instruction.
    pub fn terminator(&self) -> usize {
        self.end - 1
    }
}

/// The control-flow graph of a program.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// `block_of[i]` = index of the block containing instruction `i`.
    block_of: Vec<usize>,
    reachable: Vec<bool>,
    roots: Vec<usize>,
    address_taken: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `program`. Programs always have at least one
    /// instruction (the assembler's implicit `li r0, 0` prologue), so the
    /// graph always has an entry block.
    pub fn build(program: &Program) -> Cfg {
        let code = program.code();
        let n = code.len();
        assert!(n > 0, "programs have at least the implicit prologue");

        // Leader discovery.
        let mut leader = vec![false; n];
        leader[0] = true;
        if let Some(h) = program.fault_handler() {
            if h < n {
                leader[h] = true;
            }
        }
        // The address-taken scan only matters when some instruction can
        // consume a code pointer; `ret` is excluded because it is modeled by
        // the return-site approximation instead.
        let has_computed_targets = code.iter().any(|i| {
            matches!(
                i,
                Inst::JumpInd { .. } | Inst::CallInd { .. } | Inst::SetRet { .. }
            )
        });
        let mut address_taken_idx = Vec::new();
        for (i, inst) in code.iter().enumerate() {
            if let Some(t) = inst.static_target() {
                if t < n {
                    leader[t] = true;
                }
            }
            if inst.ends_block() && i + 1 < n {
                leader[i + 1] = true;
            }
            if let Inst::Li { imm, .. } = *inst {
                // Address-taken approximation: an li of an in-range code
                // index may flow into jmp-ind/call-ind/setret. Index 0 is
                // the prologue's own `li r0, 0` and every small-constant li
                // would alias it, so it is excluded.
                if has_computed_targets && imm > 0 && (imm as u64) < n as u64 {
                    let t = imm as usize;
                    leader[t] = true;
                    address_taken_idx.push(t);
                }
            }
        }
        address_taken_idx.sort_unstable();
        address_taken_idx.dedup();

        // Block formation.
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0;
        for i in 0..n {
            block_of[i] = blocks.len();
            let last = i + 1 == n || leader[i + 1];
            if last || code[i].ends_block() {
                blocks.push(BasicBlock {
                    start,
                    end: i + 1,
                    succs: Vec::new(),
                });
                start = i + 1;
            }
        }
        let block_at = |idx: usize| block_of[idx];

        // Return-site and address-taken target sets (block indices).
        let mut return_sites = Vec::new();
        for (i, inst) in code.iter().enumerate() {
            if matches!(inst, Inst::Call { .. } | Inst::CallInd { .. }) && i + 1 < n {
                return_sites.push(block_at(i + 1));
            }
        }
        let address_taken: Vec<usize> = address_taken_idx.iter().map(|&t| block_at(t)).collect();

        // Successor edges.
        for blk in &mut blocks {
            let term_idx = blk.terminator();
            let term = code[term_idx];
            let mut succs = Vec::new();
            match term {
                Inst::Branch { target, .. } => {
                    if term_idx + 1 < n {
                        succs.push(block_at(term_idx + 1));
                    }
                    if target < n {
                        succs.push(block_at(target));
                    }
                }
                Inst::Jump { target } => {
                    if target < n {
                        succs.push(block_at(target));
                    }
                }
                Inst::Call { target } => {
                    if target < n {
                        succs.push(block_at(target));
                    }
                }
                Inst::JumpInd { .. } => succs.extend(address_taken.iter().copied()),
                Inst::CallInd { .. } => succs.extend(address_taken.iter().copied()),
                Inst::Ret => succs.extend(return_sites.iter().copied()),
                Inst::Halt => {}
                // Fall-through block boundary (the next instruction is a
                // leader for some other reason).
                _ => {
                    if term_idx + 1 < n {
                        succs.push(block_at(term_idx + 1));
                    }
                }
            }
            succs.sort_unstable();
            succs.dedup();
            blk.succs = succs;
        }

        // Reachability from entry + fault handler + address-taken blocks.
        let mut roots = vec![block_at(0)];
        if let Some(h) = program.fault_handler() {
            if h < n {
                roots.push(block_at(h));
            }
        }
        roots.extend(address_taken.iter().copied());
        roots.sort_unstable();
        roots.dedup();

        let mut reachable = vec![false; blocks.len()];
        let mut work: Vec<usize> = roots.clone();
        while let Some(b) = work.pop() {
            if std::mem::replace(&mut reachable[b], true) {
                continue;
            }
            work.extend(blocks[b].succs.iter().copied());
        }

        Cfg {
            blocks,
            block_of,
            reachable,
            roots,
            address_taken,
        }
    }

    /// All basic blocks, in program order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block containing instruction `idx`.
    pub fn block_of(&self, idx: usize) -> usize {
        self.block_of[idx]
    }

    /// Whether block `b` is reachable from any root.
    pub fn is_reachable(&self, b: usize) -> bool {
        self.reachable[b]
    }

    /// Root blocks of the reachability walk (entry, fault handler,
    /// address-taken blocks).
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Blocks whose leader index appears as an `li` immediate (conservative
    /// indirect-target set).
    pub fn address_taken(&self) -> &[usize] {
        &self.address_taken
    }

    /// Number of reachable blocks.
    pub fn reachable_count(&self) -> usize {
        self.reachable.iter().filter(|&&r| r).count()
    }

    /// The set of instruction indices in blocks reachable from `from_block`
    /// following only intraprocedural edges plus call-target edges — `ret`
    /// return-site edges are not traversed. This approximates the code a
    /// call at the region's border can speculatively reach ("callee span").
    pub fn span_from(&self, from_block: usize, code: &[Inst]) -> Vec<usize> {
        let mut seen = vec![false; self.blocks.len()];
        let mut work = vec![from_block];
        let mut insts = Vec::new();
        while let Some(b) = work.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            let blk = &self.blocks[b];
            insts.extend(blk.start..blk.end);
            if matches!(code[blk.terminator()], Inst::Ret) {
                continue; // do not follow return-site approximation edges
            }
            work.extend(blk.succs.iter().copied());
        }
        insts.sort_unstable();
        insts
    }

    /// Renders the CFG in Graphviz dot format. Unreachable blocks are drawn
    /// dashed; root blocks are drawn with a double border.
    pub fn to_dot(&self, program: &Program) -> String {
        use std::fmt::Write;
        let code = program.code();
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", program.name());
        let _ = writeln!(out, "  node [shape=box fontname=monospace];");
        for (b, blk) in self.blocks.iter().enumerate() {
            let mut label = format!("B{b} [{}..{})\\l", blk.start, blk.end);
            for (i, inst) in code.iter().enumerate().take(blk.end).skip(blk.start) {
                let _ = write!(label, "{i}: {inst}\\l");
            }
            let mut attrs = format!("label=\"{label}\"");
            if !self.reachable[b] {
                attrs.push_str(" style=dashed");
            }
            if self.roots.contains(&b) {
                attrs.push_str(" peripheries=2");
            }
            let _ = writeln!(out, "  B{b} [{attrs}];");
        }
        for (b, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                let _ = writeln!(out, "  B{b} -> B{s};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_isa::{Assembler, Reg};

    fn diamond() -> Program {
        let mut a = Assembler::new("diamond");
        let (x, y) = (Reg::R1, Reg::R2);
        a.li(x, 1);
        let else_ = a.label();
        let join = a.label();
        a.beq(x, Reg::R0, else_);
        a.li(y, 10);
        a.jmp(join);
        a.bind(else_);
        a.li(y, 20);
        a.bind(join);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn diamond_has_four_reachable_blocks() {
        let p = diamond();
        let cfg = Cfg::build(&p);
        // prologue+li+beq | li+jmp | li | halt
        assert_eq!(cfg.blocks().len(), 4);
        assert!((0..4).all(|b| cfg.is_reachable(b)));
        assert_eq!(cfg.blocks()[0].succs.len(), 2);
        let halt_block = cfg.block_of(p.len() - 1);
        assert!(cfg.blocks()[halt_block].succs.is_empty());
    }

    #[test]
    fn blocks_partition_the_program() {
        let p = diamond();
        let cfg = Cfg::build(&p);
        let mut covered = 0;
        for (b, blk) in cfg.blocks().iter().enumerate() {
            assert!(blk.start < blk.end);
            covered += blk.end - blk.start;
            for i in blk.start..blk.end {
                assert_eq!(cfg.block_of(i), b);
            }
        }
        assert_eq!(covered, p.len());
    }

    #[test]
    fn unreachable_code_is_flagged() {
        let mut a = Assembler::new("dead");
        let end = a.label();
        a.jmp(end);
        a.li(Reg::R1, 99); // dead
        a.bind(end);
        a.halt();
        let p = a.finish().unwrap();
        let cfg = Cfg::build(&p);
        let dead_block = cfg.block_of(2);
        assert!(!cfg.is_reachable(dead_block));
        assert!(cfg.is_reachable(cfg.block_of(p.len() - 1)));
    }

    #[test]
    fn ret_edges_use_return_site_approximation() {
        let mut a = Assembler::new("callret");
        let f = a.label();
        a.call(f);
        a.halt();
        a.bind(f);
        a.ret();
        let p = a.finish().unwrap();
        let cfg = Cfg::build(&p);
        let ret_block = cfg.block_of(p.len() - 1);
        let halt_block = cfg.block_of(2);
        assert_eq!(cfg.blocks()[ret_block].succs, vec![halt_block]);
    }

    #[test]
    fn address_taken_blocks_are_roots() {
        let mut a = Assembler::new("indirect");
        let g = a.label();
        a.la(Reg::R5, g);
        a.jmp_ind(Reg::R5);
        a.bind(g);
        a.halt();
        let p = a.finish().unwrap();
        let cfg = Cfg::build(&p);
        let gb = cfg.block_of(3);
        assert!(cfg.address_taken().contains(&gb));
        assert!(cfg.is_reachable(gb));
        // The indirect jump's successors are exactly the address-taken set.
        let jb = cfg.block_of(2);
        assert_eq!(cfg.blocks()[jb].succs, vec![gb]);
    }

    #[test]
    fn dot_output_mentions_every_block() {
        let p = diamond();
        let cfg = Cfg::build(&p);
        let dot = cfg.to_dot(&p);
        assert!(dot.starts_with("digraph"));
        for b in 0..cfg.blocks().len() {
            assert!(dot.contains(&format!("B{b} [")), "missing node B{b}");
        }
    }
}
