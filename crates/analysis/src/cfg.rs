//! Control-flow graph construction over [`Program`]s.
//!
//! Basic blocks are maximal straight-line instruction runs; leaders are the
//! entry point, every static branch/jump/call target, every instruction
//! following a control transfer or `halt`, the fault handler, and — in
//! programs that contain computed transfers (`jmp [r]` / `call [r]` /
//! `setret`) — every code index that appears as an `li` immediate (a
//! conservative address-taken approximation: `la`-style label
//! materialization compiles to `li`, so any such index may become an
//! indirect target). Programs without computed transfers skip the
//! address-taken scan entirely, since small data constants would otherwise
//! masquerade as code pointers and needlessly split blocks.
//!
//! Indirect control flow is approximated:
//!
//! - `ret` edges go to the fall-through block of every `call`/`call-ind`
//!   site (the return-site approximation).
//! - `jmp [r]` / `call [r]` edges go to every address-taken block.
//!
//! Reachability is computed from the entry block, the fault handler, and all
//! address-taken blocks, so code only enterable through an indirect transfer
//! or a fault is still considered live.

use uarch_isa::{Inst, Program};

/// One basic block: the half-open instruction range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the block's first instruction (its leader).
    pub start: usize,
    /// One past the block's last instruction.
    pub end: usize,
    /// Successor blocks, as indices into [`Cfg::blocks`].
    pub succs: Vec<usize>,
}

impl BasicBlock {
    /// Index of the block's terminating instruction.
    pub fn terminator(&self) -> usize {
        self.end - 1
    }
}

/// The control-flow graph of a program.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// `block_of[i]` = index of the block containing instruction `i`.
    block_of: Vec<usize>,
    reachable: Vec<bool>,
    roots: Vec<usize>,
    address_taken: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `program`. Programs always have at least one
    /// instruction (the assembler's implicit `li r0, 0` prologue), so the
    /// graph always has an entry block.
    pub fn build(program: &Program) -> Cfg {
        let code = program.code();
        let n = code.len();
        assert!(n > 0, "programs have at least the implicit prologue");

        // Leader discovery.
        let mut leader = vec![false; n];
        leader[0] = true;
        if let Some(h) = program.fault_handler() {
            if h < n {
                leader[h] = true;
            }
        }
        // The address-taken scan only matters when some instruction can
        // consume a code pointer; `ret` is excluded because it is modeled by
        // the return-site approximation instead.
        let has_computed_targets = code.iter().any(|i| {
            matches!(
                i,
                Inst::JumpInd { .. } | Inst::CallInd { .. } | Inst::SetRet { .. }
            )
        });
        let mut address_taken_idx = Vec::new();
        for (i, inst) in code.iter().enumerate() {
            if let Some(t) = inst.static_target() {
                if t < n {
                    leader[t] = true;
                }
            }
            if inst.ends_block() && i + 1 < n {
                leader[i + 1] = true;
            }
            if let Inst::Li { imm, .. } = *inst {
                // Address-taken approximation: an li of an in-range code
                // index may flow into jmp-ind/call-ind/setret. Index 0 is
                // the prologue's own `li r0, 0` and every small-constant li
                // would alias it, so it is excluded.
                if has_computed_targets && imm > 0 && (imm as u64) < n as u64 {
                    let t = imm as usize;
                    leader[t] = true;
                    address_taken_idx.push(t);
                }
            }
        }
        address_taken_idx.sort_unstable();
        address_taken_idx.dedup();

        // Block formation.
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0;
        for i in 0..n {
            block_of[i] = blocks.len();
            let last = i + 1 == n || leader[i + 1];
            if last || code[i].ends_block() {
                blocks.push(BasicBlock {
                    start,
                    end: i + 1,
                    succs: Vec::new(),
                });
                start = i + 1;
            }
        }
        let block_at = |idx: usize| block_of[idx];

        // Return-site and address-taken target sets (block indices).
        let mut return_sites = Vec::new();
        for (i, inst) in code.iter().enumerate() {
            if matches!(inst, Inst::Call { .. } | Inst::CallInd { .. }) && i + 1 < n {
                return_sites.push(block_at(i + 1));
            }
        }
        let address_taken: Vec<usize> = address_taken_idx.iter().map(|&t| block_at(t)).collect();

        // Successor edges.
        for blk in &mut blocks {
            let term_idx = blk.terminator();
            let term = code[term_idx];
            let mut succs = Vec::new();
            match term {
                Inst::Branch { target, .. } => {
                    if term_idx + 1 < n {
                        succs.push(block_at(term_idx + 1));
                    }
                    if target < n {
                        succs.push(block_at(target));
                    }
                }
                Inst::Jump { target } => {
                    if target < n {
                        succs.push(block_at(target));
                    }
                }
                Inst::Call { target } => {
                    if target < n {
                        succs.push(block_at(target));
                    }
                }
                Inst::JumpInd { .. } => succs.extend(address_taken.iter().copied()),
                Inst::CallInd { .. } => succs.extend(address_taken.iter().copied()),
                Inst::Ret => succs.extend(return_sites.iter().copied()),
                Inst::Halt => {}
                // Fall-through block boundary (the next instruction is a
                // leader for some other reason).
                _ => {
                    if term_idx + 1 < n {
                        succs.push(block_at(term_idx + 1));
                    }
                }
            }
            succs.sort_unstable();
            succs.dedup();
            blk.succs = succs;
        }

        // Reachability from entry + fault handler + address-taken blocks.
        let mut roots = vec![block_at(0)];
        if let Some(h) = program.fault_handler() {
            if h < n {
                roots.push(block_at(h));
            }
        }
        roots.extend(address_taken.iter().copied());
        roots.sort_unstable();
        roots.dedup();

        let mut reachable = vec![false; blocks.len()];
        let mut work: Vec<usize> = roots.clone();
        while let Some(b) = work.pop() {
            if std::mem::replace(&mut reachable[b], true) {
                continue;
            }
            work.extend(blocks[b].succs.iter().copied());
        }

        Cfg {
            blocks,
            block_of,
            reachable,
            roots,
            address_taken,
        }
    }

    /// All basic blocks, in program order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block containing instruction `idx`.
    pub fn block_of(&self, idx: usize) -> usize {
        self.block_of[idx]
    }

    /// Whether block `b` is reachable from any root.
    pub fn is_reachable(&self, b: usize) -> bool {
        self.reachable[b]
    }

    /// Root blocks of the reachability walk (entry, fault handler,
    /// address-taken blocks).
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Blocks whose leader index appears as an `li` immediate (conservative
    /// indirect-target set).
    pub fn address_taken(&self) -> &[usize] {
        &self.address_taken
    }

    /// Number of reachable blocks.
    pub fn reachable_count(&self) -> usize {
        self.reachable.iter().filter(|&&r| r).count()
    }

    /// The set of instruction indices in blocks reachable from `from_block`
    /// following only intraprocedural edges plus call-target edges — `ret`
    /// return-site edges are not traversed. This approximates the code a
    /// call at the region's border can speculatively reach ("callee span").
    pub fn span_from(&self, from_block: usize, code: &[Inst]) -> Vec<usize> {
        let mut seen = vec![false; self.blocks.len()];
        let mut work = vec![from_block];
        let mut insts = Vec::new();
        while let Some(b) = work.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            let blk = &self.blocks[b];
            insts.extend(blk.start..blk.end);
            if matches!(code[blk.terminator()], Inst::Ret) {
                continue; // do not follow return-site approximation edges
            }
            work.extend(blk.succs.iter().copied());
        }
        insts.sort_unstable();
        insts
    }

    /// Predecessor lists: `preds()[b]` = blocks with an edge into `b`,
    /// sorted and deduplicated.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                preds[s].push(b);
            }
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }
        preds
    }

    /// Renders the CFG in Graphviz dot format. Unreachable blocks are drawn
    /// dashed; root blocks are drawn with a double border.
    pub fn to_dot(&self, program: &Program) -> String {
        use std::fmt::Write;
        let code = program.code();
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", program.name());
        let _ = writeln!(out, "  node [shape=box fontname=monospace];");
        for (b, blk) in self.blocks.iter().enumerate() {
            let mut label = format!("B{b} [{}..{})\\l", blk.start, blk.end);
            for (i, inst) in code.iter().enumerate().take(blk.end).skip(blk.start) {
                let _ = write!(label, "{i}: {inst}\\l");
            }
            let mut attrs = format!("label=\"{label}\"");
            if !self.reachable[b] {
                attrs.push_str(" style=dashed");
            }
            if self.roots.contains(&b) {
                attrs.push_str(" peripheries=2");
            }
            let _ = writeln!(out, "  B{b} [{attrs}];");
        }
        for (b, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                let _ = writeln!(out, "  B{b} -> B{s};");
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Dominator tree over a [`Cfg`], computed with the iterative
/// Cooper–Harvey–Kennedy algorithm.
///
/// The CFG can have several roots (entry, fault handler, address-taken
/// blocks), so dominance is computed over an augmented graph with a virtual
/// super-root that has an edge to every root. The virtual root never appears
/// in the public API: a root block's [`DomTree::idom`] is `None`, and
/// dominance queries involving unreachable blocks are always `false`.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` = immediate dominator of `b`, `None` for roots and
    /// unreachable blocks.
    idom: Vec<Option<usize>>,
    /// Depth in the dominator tree (roots at depth 0); unreachable blocks
    /// carry `usize::MAX`.
    depth: Vec<usize>,
    reachable: Vec<bool>,
}

impl DomTree {
    /// Builds the dominator tree of `cfg`.
    pub fn build(cfg: &Cfg) -> DomTree {
        let nb = cfg.blocks().len();
        let virt = nb; // virtual super-root
        let succs = |v: usize| -> Vec<usize> {
            if v == virt {
                cfg.roots().to_vec()
            } else {
                cfg.blocks()[v].succs.clone()
            }
        };

        // Reverse postorder from the virtual root (iterative DFS).
        let mut rpo_num = vec![usize::MAX; nb + 1];
        let mut order = Vec::with_capacity(nb + 1);
        let mut visited = vec![false; nb + 1];
        // Stack holds (node, next-successor-index) for post-order emission.
        let mut stack = vec![(virt, 0usize)];
        visited[virt] = true;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            let ss = succs(v);
            if *i < ss.len() {
                let s = ss[*i];
                *i += 1;
                if !std::mem::replace(&mut visited[s], true) {
                    stack.push((s, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
        order.reverse(); // now reverse postorder, order[0] == virt
        for (i, &v) in order.iter().enumerate() {
            rpo_num[v] = i;
        }

        // Predecessors in the augmented graph.
        let mut preds = vec![Vec::new(); nb + 1];
        for &root in cfg.roots() {
            preds[root].push(virt);
        }
        for (b, blk) in cfg.blocks().iter().enumerate() {
            for &s in &blk.succs {
                preds[s].push(b);
            }
        }

        let mut doms: Vec<Option<usize>> = vec![None; nb + 1];
        doms[virt] = Some(virt);
        let intersect = |doms: &[Option<usize>], rpo: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo[a] > rpo[b] {
                    a = doms[a].expect("processed node has a dominator");
                }
                while rpo[b] > rpo[a] {
                    b = doms[b].expect("processed node has a dominator");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                let mut new_idom = None;
                for &p in &preds[b] {
                    if doms[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&doms, &rpo_num, p, cur),
                    });
                }
                if new_idom.is_some() && doms[b] != new_idom {
                    doms[b] = new_idom;
                    changed = true;
                }
            }
        }

        // Strip the virtual root and derive depths.
        let mut idom = vec![None; nb];
        let mut reachable = vec![false; nb];
        for b in 0..nb {
            if let Some(d) = doms[b] {
                reachable[b] = true;
                if d != virt {
                    idom[b] = Some(d);
                }
            }
        }
        let mut depth = vec![usize::MAX; nb];
        // order is topological w.r.t. the dominator tree (idom precedes its
        // children in RPO), so one pass suffices.
        for &v in order.iter().skip(1) {
            depth[v] = match idom[v] {
                Some(d) => depth[d] + 1,
                None if reachable[v] => 0,
                None => usize::MAX,
            };
        }

        DomTree {
            idom,
            depth,
            reachable,
        }
    }

    /// Immediate dominator of `b` (`None` for roots and unreachable
    /// blocks).
    pub fn idom(&self, b: usize) -> Option<usize> {
        self.idom[b]
    }

    /// Depth of `b` in the dominator tree (roots at 0); `None` when
    /// unreachable.
    pub fn depth(&self, b: usize) -> Option<usize> {
        (self.depth[b] != usize::MAX).then_some(self.depth[b])
    }

    /// Whether `a` dominates `b` (reflexively). Always `false` when either
    /// block is unreachable.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if !self.reachable[a] || !self.reachable[b] || self.depth[a] > self.depth[b] {
            return false;
        }
        let mut cur = b;
        while self.depth[cur] > self.depth[a] {
            match self.idom[cur] {
                Some(d) => cur = d,
                None => return false,
            }
        }
        cur == a
    }

    /// The dominator chain of `b`, from its root down to `b` itself.
    pub fn chain(&self, b: usize) -> Vec<usize> {
        let mut chain = Vec::new();
        if !self.reachable[b] {
            return chain;
        }
        let mut cur = Some(b);
        while let Some(c) = cur {
            chain.push(c);
            cur = self.idom[c];
        }
        chain.reverse();
        chain
    }
}

/// One natural loop: a back edge's header plus every block that can reach
/// the back edge's source without passing through the header.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (dominates every block of the body).
    pub header: usize,
    /// The body, including the header.
    pub blocks: std::collections::BTreeSet<usize>,
    /// The back edges `(source, header)` that define the loop. Same-header
    /// loops are merged, so there may be several.
    pub back_edges: Vec<(usize, usize)>,
}

/// All natural loops of a [`Cfg`], found via dominance-based back-edge
/// detection (an edge `b -> h` where `h` dominates `b`). Irreducible cycles
/// (entered other than through a dominating header) are not reported.
#[derive(Debug, Clone)]
pub struct LoopForest {
    loops: Vec<NaturalLoop>,
    /// `innermost[b]` = index into `loops` of the smallest loop containing
    /// `b`.
    innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Finds the natural loops of `cfg` given its dominator tree.
    pub fn build(cfg: &Cfg, dom: &DomTree) -> LoopForest {
        use std::collections::BTreeMap;
        let preds = cfg.preds();
        // Group back edges by header.
        let mut by_header: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (b, blk) in cfg.blocks().iter().enumerate() {
            for &h in &blk.succs {
                if dom.dominates(h, b) {
                    by_header.entry(h).or_default().push(b);
                }
            }
        }
        let mut loops = Vec::new();
        for (header, sources) in by_header {
            let mut blocks = std::collections::BTreeSet::new();
            blocks.insert(header);
            // Reverse-pred walk from the back-edge sources, stopping at the
            // header. Only blocks the header dominates can belong to the
            // natural loop: with multiple CFG roots (fault handler,
            // address-taken functions) a body block may have predecessors
            // reachable from another root, and following those would leak
            // the walk outside the loop.
            let mut work: Vec<usize> = sources.clone();
            while let Some(b) = work.pop() {
                if dom.dominates(header, b) && blocks.insert(b) {
                    work.extend(preds[b].iter().copied());
                }
            }
            loops.push(NaturalLoop {
                header,
                blocks,
                back_edges: sources.into_iter().map(|s| (s, header)).collect(),
            });
        }
        let mut innermost: Vec<Option<usize>> = vec![None; cfg.blocks().len()];
        for (i, l) in loops.iter().enumerate() {
            for &b in &l.blocks {
                let replace = match innermost[b] {
                    None => true,
                    Some(j) => l.blocks.len() < loops[j].blocks.len(),
                };
                if replace {
                    innermost[b] = Some(i);
                }
            }
        }
        LoopForest { loops, innermost }
    }

    /// All loops, ordered by header block.
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// The smallest loop containing `block`, if any.
    pub fn innermost(&self, block: usize) -> Option<&NaturalLoop> {
        self.innermost[block].map(|i| &self.loops[i])
    }
}

/// Whether `to` is reachable from `from` along CFG edges (inclusive: a
/// block reaches itself).
fn reaches(cfg: &Cfg, from: usize, to: usize) -> bool {
    let mut seen = vec![false; cfg.blocks().len()];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(b) = stack.pop() {
        if b == to {
            return true;
        }
        for &s in &cfg.blocks()[b].succs {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    false
}

/// Renders the control-flow path condition guarding `block`: for every
/// strictly dominating block that ends in a conditional branch with exactly
/// one successor on the dominator path, emits `cond@idx:t` (branch taken)
/// or `cond@idx:nt` (fall-through), joined with `" & "`. Returns an empty
/// string for blocks reachable unconditionally (or unreachable ones).
pub fn path_condition(cfg: &Cfg, dom: &DomTree, code: &[Inst], block: usize) -> String {
    let mut terms = Vec::new();
    for &d in dom.chain(block).iter().rev().skip(1) {
        let t = cfg.blocks()[d].terminator();
        if let Inst::Branch { cond, target, .. } = code[t] {
            let taken = (target < code.len()).then(|| cfg.block_of(target));
            let fall = (t + 1 < code.len()).then(|| cfg.block_of(t + 1));
            let taken_dom = taken.is_some_and(|s| dom.dominates(s, block));
            let fall_dom = fall.is_some_and(|s| dom.dominates(s, block));
            // Only a decisive branch (exactly one arm on the path)
            // constrains the block — and only when the other arm cannot
            // rejoin it. When the branch target is the join point of its
            // own fall-through (a forward skip), the dominating arm is
            // reached either way, so the branch decides nothing.
            let decisive = match (taken_dom, fall_dom, taken, fall) {
                (true, false, Some(t_b), Some(f_b)) => !reaches(cfg, f_b, t_b),
                (true, false, Some(_), None) => true,
                (false, true, Some(t_b), Some(f_b)) => !reaches(cfg, t_b, f_b),
                (false, true, None, Some(_)) => true,
                _ => false,
            };
            if decisive {
                let arm = if taken_dom { "t" } else { "nt" };
                terms.push(format!("{cond:?}@{t}:{arm}"));
            }
        }
    }
    terms.reverse(); // outermost (root-nearest) condition first
    terms.join(" & ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_isa::{Assembler, Reg};

    fn diamond() -> Program {
        let mut a = Assembler::new("diamond");
        let (x, y) = (Reg::R1, Reg::R2);
        a.li(x, 1);
        let else_ = a.label();
        let join = a.label();
        a.beq(x, Reg::R0, else_);
        a.li(y, 10);
        a.jmp(join);
        a.bind(else_);
        a.li(y, 20);
        a.bind(join);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn diamond_has_four_reachable_blocks() {
        let p = diamond();
        let cfg = Cfg::build(&p);
        // prologue+li+beq | li+jmp | li | halt
        assert_eq!(cfg.blocks().len(), 4);
        assert!((0..4).all(|b| cfg.is_reachable(b)));
        assert_eq!(cfg.blocks()[0].succs.len(), 2);
        let halt_block = cfg.block_of(p.len() - 1);
        assert!(cfg.blocks()[halt_block].succs.is_empty());
    }

    #[test]
    fn blocks_partition_the_program() {
        let p = diamond();
        let cfg = Cfg::build(&p);
        let mut covered = 0;
        for (b, blk) in cfg.blocks().iter().enumerate() {
            assert!(blk.start < blk.end);
            covered += blk.end - blk.start;
            for i in blk.start..blk.end {
                assert_eq!(cfg.block_of(i), b);
            }
        }
        assert_eq!(covered, p.len());
    }

    #[test]
    fn unreachable_code_is_flagged() {
        let mut a = Assembler::new("dead");
        let end = a.label();
        a.jmp(end);
        a.li(Reg::R1, 99); // dead
        a.bind(end);
        a.halt();
        let p = a.finish().unwrap();
        let cfg = Cfg::build(&p);
        let dead_block = cfg.block_of(2);
        assert!(!cfg.is_reachable(dead_block));
        assert!(cfg.is_reachable(cfg.block_of(p.len() - 1)));
    }

    #[test]
    fn ret_edges_use_return_site_approximation() {
        let mut a = Assembler::new("callret");
        let f = a.label();
        a.call(f);
        a.halt();
        a.bind(f);
        a.ret();
        let p = a.finish().unwrap();
        let cfg = Cfg::build(&p);
        let ret_block = cfg.block_of(p.len() - 1);
        let halt_block = cfg.block_of(2);
        assert_eq!(cfg.blocks()[ret_block].succs, vec![halt_block]);
    }

    #[test]
    fn address_taken_blocks_are_roots() {
        let mut a = Assembler::new("indirect");
        let g = a.label();
        a.la(Reg::R5, g);
        a.jmp_ind(Reg::R5);
        a.bind(g);
        a.halt();
        let p = a.finish().unwrap();
        let cfg = Cfg::build(&p);
        let gb = cfg.block_of(3);
        assert!(cfg.address_taken().contains(&gb));
        assert!(cfg.is_reachable(gb));
        // The indirect jump's successors are exactly the address-taken set.
        let jb = cfg.block_of(2);
        assert_eq!(cfg.blocks()[jb].succs, vec![gb]);
    }

    #[test]
    fn dot_output_mentions_every_block() {
        let p = diamond();
        let cfg = Cfg::build(&p);
        let dot = cfg.to_dot(&p);
        assert!(dot.starts_with("digraph"));
        for b in 0..cfg.blocks().len() {
            assert!(dot.contains(&format!("B{b} [")), "missing node B{b}");
        }
    }
}
