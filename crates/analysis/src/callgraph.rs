//! Call-graph construction over a [`Cfg`]: function discovery, per-function
//! body/return inventory, and call-site-matched return edges.
//!
//! The CFG approximates a `ret` with edges to the fall-through of *every*
//! call site in the program (the return-site approximation). The call graph
//! refines that: it discovers function entries (the program entry, the fault
//! handler, every static `call` target, and — when the program contains
//! indirect calls — every address-taken block), walks each function's body
//! along intraprocedural edges only (a `call` steps to its own fall-through,
//! never into the callee), and matches every `ret` to the fall-through
//! blocks of exactly the call sites that can invoke its function.
//!
//! The taint fixpoint ([`crate::taint::propagate`]) traverses these matched
//! return edges instead of the CFG's global approximation, so secrets
//! returned by one function can no longer bleed into the continuation of an
//! unrelated call site. Per-function [`FnSummary`] facts (loads, flushes,
//! kernel touches, fences, returning-or-not) feed the severity model and
//! the findings report.

use std::collections::{BTreeMap, BTreeSet};

use uarch_isa::{Inst, Program};

use crate::cfg::Cfg;

/// Index of a function in [`CallGraph::functions`].
pub type FuncId = usize;

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Instruction index of the `call` / `call [r]`.
    pub at: usize,
    /// Resolved callees ([`FuncId`]s). A static call has at most one; an
    /// indirect call conservatively targets every address-taken function.
    pub callees: Vec<FuncId>,
    /// Whether the call is indirect.
    pub indirect: bool,
    /// Block control returns to after the callee (the fall-through block),
    /// if the call is not the last instruction.
    pub return_block: Option<usize>,
}

/// One discovered function.
#[derive(Debug, Clone)]
pub struct FuncInfo {
    /// Stable display name: `main`, `fault`, or `fn@<entry inst>`.
    pub name: String,
    /// Entry block index.
    pub entry: usize,
    /// Blocks reachable from the entry along intraprocedural edges.
    pub blocks: BTreeSet<usize>,
    /// Instruction indices of `ret`s in the body.
    pub rets: Vec<usize>,
    /// Call sites in the body, in program order.
    pub calls: Vec<CallSite>,
}

/// Post-convergence dataflow facts about one function, used by the severity
/// model and the findings report.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    /// Instruction count over the body blocks.
    pub insts: usize,
    /// Load instructions executed in the body.
    pub loads: usize,
    /// `clflush` sites in the body.
    pub flushes: usize,
    /// `rdcycle` sites in the body.
    pub cycle_reads: usize,
    /// Whether the body contains a serializing `fence`.
    pub has_fence: bool,
    /// Whether the function can return (has at least one `ret`).
    pub returns: bool,
    /// Whether the function participates in a call-graph cycle.
    pub recursive: bool,
}

/// The interprocedural structure of one program.
#[derive(Debug, Clone)]
pub struct CallGraph {
    functions: Vec<FuncInfo>,
    /// `funcs_of_block[b]` = functions whose body contains block `b`.
    funcs_of_block: Vec<Vec<FuncId>>,
    /// `ret_targets[f]` = blocks a `ret` of function `f` returns to (the
    /// fall-through blocks of the call sites that can invoke `f`).
    ret_targets: Vec<Vec<usize>>,
    /// Caller edges: `callers[f]` = functions containing a call site that
    /// can invoke `f`.
    callers: Vec<Vec<FuncId>>,
    recursive: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph of `program` over its CFG.
    pub fn build(program: &Program, cfg: &Cfg) -> CallGraph {
        let code = program.code();
        let n = code.len();
        let blocks = cfg.blocks();

        // --- Function entry discovery -----------------------------------
        // Ordered map entry-block -> name; first writer wins the name.
        let mut entries: BTreeMap<usize, String> = BTreeMap::new();
        entries.insert(cfg.block_of(0), "main".to_string());
        if let Some(h) = program.fault_handler() {
            if h < n {
                entries
                    .entry(cfg.block_of(h))
                    .or_insert("fault".to_string());
            }
        }
        for inst in code {
            if let Inst::Call { target } = *inst {
                if target < n {
                    let b = cfg.block_of(target);
                    entries.entry(b).or_insert_with(|| format!("fn@{target}"));
                }
            }
        }
        let has_call_ind = code.iter().any(|i| matches!(i, Inst::CallInd { .. }));
        if has_call_ind {
            for &b in cfg.address_taken() {
                let leader = blocks[b].start;
                entries.entry(b).or_insert_with(|| format!("fn@{leader}"));
            }
        }

        // --- Function bodies (intraprocedural reachability) -------------
        let mut functions: Vec<FuncInfo> = Vec::new();
        for (&entry, name) in &entries {
            let mut body = BTreeSet::new();
            let mut work = vec![entry];
            while let Some(b) = work.pop() {
                if !body.insert(b) {
                    continue;
                }
                let blk = &blocks[b];
                match code[blk.terminator()] {
                    // Calls step over the callee to their own fall-through.
                    Inst::Call { .. } | Inst::CallInd { .. } => {
                        let next = blk.terminator() + 1;
                        if next < n {
                            work.push(cfg.block_of(next));
                        }
                    }
                    // Returns and halts end the walk along this path.
                    Inst::Ret | Inst::Halt => {}
                    // Branches, jumps and indirect jumps (address-taken
                    // edges) are intraprocedural: follow the CFG.
                    _ => work.extend(blk.succs.iter().copied()),
                }
            }
            let rets = body
                .iter()
                .map(|&b| blocks[b].terminator())
                .filter(|&t| matches!(code[t], Inst::Ret))
                .collect();
            functions.push(FuncInfo {
                name: name.clone(),
                entry,
                blocks: body,
                rets,
                calls: Vec::new(),
            });
        }
        let func_by_entry: BTreeMap<usize, FuncId> = functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.entry, i))
            .collect();
        let indirect_callees: Vec<FuncId> = cfg
            .address_taken()
            .iter()
            .filter_map(|b| func_by_entry.get(b).copied())
            .collect();

        // --- Call sites and matched return targets ----------------------
        let mut ret_targets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); functions.len()];
        let mut callers: Vec<BTreeSet<FuncId>> = vec![BTreeSet::new(); functions.len()];
        for (f, func) in functions.iter_mut().enumerate() {
            let body: Vec<usize> = func.blocks.iter().copied().collect();
            for &b in &body {
                let at = blocks[b].terminator();
                let (callees, indirect) = match code[at] {
                    Inst::Call { target } if target < n => (
                        func_by_entry
                            .get(&cfg.block_of(target))
                            .copied()
                            .into_iter()
                            .collect::<Vec<_>>(),
                        false,
                    ),
                    Inst::CallInd { .. } => (indirect_callees.clone(), true),
                    _ => continue,
                };
                let return_block = (at + 1 < n).then(|| cfg.block_of(at + 1));
                for &callee in &callees {
                    callers[callee].insert(f);
                    if let Some(rb) = return_block {
                        ret_targets[callee].insert(rb);
                    }
                }
                func.calls.push(CallSite {
                    at,
                    callees,
                    indirect,
                    return_block,
                });
            }
        }

        // --- Block -> containing functions ------------------------------
        let mut funcs_of_block: Vec<Vec<FuncId>> = vec![Vec::new(); blocks.len()];
        for (i, f) in functions.iter().enumerate() {
            for &b in &f.blocks {
                funcs_of_block[b].push(i);
            }
        }

        // --- Recursion: f is recursive iff f reaches f through >=1 call --
        let callee_edges: Vec<Vec<FuncId>> = functions
            .iter()
            .map(|f| {
                let mut cs: Vec<FuncId> = f.calls.iter().flat_map(|c| c.callees.clone()).collect();
                cs.sort_unstable();
                cs.dedup();
                cs
            })
            .collect();
        let recursive = (0..functions.len())
            .map(|f| {
                let mut seen = vec![false; functions.len()];
                let mut work = callee_edges[f].clone();
                while let Some(g) = work.pop() {
                    if g == f {
                        return true;
                    }
                    if !std::mem::replace(&mut seen[g], true) {
                        work.extend(callee_edges[g].iter().copied());
                    }
                }
                false
            })
            .collect();

        CallGraph {
            functions,
            funcs_of_block,
            ret_targets: ret_targets
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
            callers: callers
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
            recursive,
        }
    }

    /// All discovered functions, ordered by entry block.
    pub fn functions(&self) -> &[FuncInfo] {
        &self.functions
    }

    /// Functions whose body contains block `b`.
    pub fn funcs_of_block(&self, b: usize) -> &[FuncId] {
        &self.funcs_of_block[b]
    }

    /// Blocks a `ret` of function `f` returns to.
    pub fn ret_targets(&self, f: FuncId) -> &[usize] {
        &self.ret_targets[f]
    }

    /// Functions containing a call site that can invoke `f`.
    pub fn callers(&self, f: FuncId) -> &[FuncId] {
        &self.callers[f]
    }

    /// Whether `f` participates in a call-graph cycle.
    pub fn is_recursive(&self, f: FuncId) -> bool {
        self.recursive[f]
    }

    /// The matched return successors of a `ret`-terminated block: the union
    /// of [`CallGraph::ret_targets`] over every function containing it. A
    /// `ret` outside every function body (unreachable code) — or in a
    /// never-called function like `main` — returns nowhere.
    pub fn ret_successors(&self, block: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self.funcs_of_block[block]
            .iter()
            .flat_map(|&f| self.ret_targets[f].iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Display name for the innermost function containing `block`: among
    /// containing functions, the one with the highest entry at or below the
    /// block (shared trailing blocks attribute to the nearest entry). Falls
    /// back to `?` for blocks outside every body.
    pub fn name_of_block(&self, block: usize) -> &str {
        self.funcs_of_block[block]
            .iter()
            .filter(|&&f| self.functions[f].entry <= block)
            .max_by_key(|&&f| self.functions[f].entry)
            .or_else(|| self.funcs_of_block[block].first())
            .map_or("?", |&f| self.functions[f].name.as_str())
    }

    /// Computes the per-function structural summaries (instruction counts,
    /// memory/timer activity, fences, returnability, recursion).
    pub fn summaries(&self, program: &Program, cfg: &Cfg) -> Vec<FnSummary> {
        let code = program.code();
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let mut s = FnSummary {
                    returns: !f.rets.is_empty(),
                    recursive: self.recursive[i],
                    ..FnSummary::default()
                };
                for &b in &f.blocks {
                    let blk = &cfg.blocks()[b];
                    s.insts += blk.end - blk.start;
                    for inst in &code[blk.start..blk.end] {
                        match inst {
                            Inst::Load { .. } => s.loads += 1,
                            Inst::Flush { .. } => s.flushes += 1,
                            Inst::RdCycle { .. } => s.cycle_reads += 1,
                            Inst::Fence => s.has_fence = true,
                            _ => {}
                        }
                    }
                }
                s
            })
            .collect()
    }

    /// Renders the call graph in Graphviz dot format (functions as nodes,
    /// call sites as edges, dashed for indirect).
    pub fn to_dot(&self, program: &Program) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"calls:{}\" {{", program.name());
        let _ = writeln!(out, "  node [shape=oval fontname=monospace];");
        for (i, f) in self.functions.iter().enumerate() {
            let _ = writeln!(
                out,
                "  F{i} [label=\"{} ({} blocks)\"{}];",
                f.name,
                f.blocks.len(),
                if self.recursive[i] {
                    " peripheries=2"
                } else {
                    ""
                }
            );
        }
        for (i, f) in self.functions.iter().enumerate() {
            for c in &f.calls {
                for &callee in &c.callees {
                    let style = if c.indirect { " [style=dashed]" } else { "" };
                    let _ = writeln!(out, "  F{i} -> F{callee}{style};");
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_isa::{Assembler, Reg};

    fn two_funcs() -> Program {
        let mut a = Assembler::new("two-funcs");
        let (f, g) = (a.label(), a.label());
        a.call(f); // site 1
        a.call(g); // site 2
        a.halt();
        a.bind(f);
        a.nop();
        a.ret();
        a.bind(g);
        a.ret();
        a.finish().unwrap()
    }

    #[test]
    fn discovers_main_and_callees_with_matched_returns() {
        let p = two_funcs();
        let cfg = Cfg::build(&p);
        let cg = CallGraph::build(&p, &cfg);
        assert_eq!(cg.functions().len(), 3, "{:?}", cg.functions());
        let names: Vec<&str> = cg.functions().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names[0], "main");

        // f's ret returns only to the fall-through of `call f`, g's only to
        // the fall-through of `call g` — not to each other's.
        let f_id = 1;
        let g_id = 2;
        let call_f_fallthrough = cfg.block_of(2); // the `call g` block
        let call_g_fallthrough = cfg.block_of(3); // the `halt` block
        assert_eq!(cg.ret_targets(f_id), &[call_f_fallthrough]);
        assert_eq!(cg.ret_targets(g_id), &[call_g_fallthrough]);
        assert_eq!(cg.callers(f_id), &[0]);
        assert!(!cg.is_recursive(f_id));
    }

    #[test]
    fn ret_in_uncalled_main_returns_nowhere() {
        let mut a = Assembler::new("stray-ret");
        a.nop();
        a.ret();
        let p = a.finish().unwrap();
        let cfg = Cfg::build(&p);
        let cg = CallGraph::build(&p, &cfg);
        let ret_block = cfg.block_of(p.len() - 1);
        assert!(cg.ret_successors(ret_block).is_empty());
    }

    #[test]
    fn recursion_is_detected() {
        let mut a = Assembler::new("rec");
        let f = a.label();
        a.call(f);
        a.halt();
        a.bind(f);
        a.call(f);
        a.ret();
        let p = a.finish().unwrap();
        let cfg = Cfg::build(&p);
        let cg = CallGraph::build(&p, &cfg);
        let f_id = cg
            .functions()
            .iter()
            .position(|fi| fi.name.starts_with("fn@"))
            .unwrap();
        assert!(cg.is_recursive(f_id));
        assert!(!cg.is_recursive(0), "main is not in the cycle");
        let summaries = cg.summaries(&p, &cfg);
        assert!(summaries[f_id].recursive && summaries[f_id].returns);
    }

    #[test]
    fn indirect_calls_target_address_taken_functions() {
        let mut a = Assembler::new("ind");
        let f = a.label();
        a.la(Reg::R5, f);
        a.call_ind(Reg::R5);
        a.halt();
        a.bind(f);
        a.ret();
        let p = a.finish().unwrap();
        let cfg = Cfg::build(&p);
        let cg = CallGraph::build(&p, &cfg);
        // 0: prologue li, 1: la, 2: call_ind, 3: halt, 4: f's ret.
        let f_id = cg
            .functions()
            .iter()
            .position(|fi| fi.entry == cfg.block_of(4))
            .expect("address-taken entry becomes a function");
        let halt_block = cfg.block_of(3);
        assert_eq!(cg.ret_targets(f_id), &[halt_block]);
        let main_calls = &cg.functions()[0].calls;
        assert_eq!(main_calls.len(), 1);
        assert!(main_calls[0].indirect);
        assert_eq!(main_calls[0].callees, vec![f_id]);
    }
}
