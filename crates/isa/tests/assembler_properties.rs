//! Property-based tests for the assembler: label resolution and program
//! structure invariants over randomized construction orders.

use proptest::prelude::*;
use uarch_isa::{Assembler, Inst, Reg};

proptest! {
    #[test]
    fn every_branch_targets_a_real_instruction(
        // Random interleaving of ops: 0 = nop, 1 = forward jump, 2 = bind a
        // pending label, 3 = backward branch to a bound label.
        ops in proptest::collection::vec(0u8..4, 1..80)
    ) {
        let mut a = Assembler::new("prop");
        let mut pending: Vec<uarch_isa::Label> = Vec::new();
        let mut bound: Vec<uarch_isa::Label> = Vec::new();
        for op in ops {
            match op {
                0 => a.nop(),
                1 => {
                    let l = a.label();
                    a.jmp(l);
                    pending.push(l);
                }
                2 => {
                    if let Some(l) = pending.pop() {
                        a.bind(l);
                        bound.push(l);
                    } else {
                        a.nop();
                    }
                }
                _ => {
                    if let Some(&l) = bound.last() {
                        a.bne(Reg::R1, Reg::R2, l);
                    } else {
                        a.nop();
                    }
                }
            }
        }
        // Bind whatever is still pending at the end.
        for l in pending {
            a.bind(l);
        }
        a.halt();
        let p = a.finish().expect("all labels bound");
        for inst in p.code() {
            let target = match *inst {
                Inst::Jump { target }
                | Inst::Call { target }
                | Inst::Branch { target, .. } => target,
                _ => continue,
            };
            prop_assert!(
                target <= p.len(),
                "target {target} out of range (len {})",
                p.len()
            );
            prop_assert_ne!(target, usize::MAX, "unpatched placeholder");
        }
    }

    #[test]
    fn emitted_instruction_count_is_exact(n_nops in 0usize..200) {
        let mut a = Assembler::new("count");
        for _ in 0..n_nops {
            a.nop();
        }
        a.halt();
        let p = a.finish().expect("assembles");
        // +1 for the implicit `li r0, 0` prologue, +1 for halt.
        prop_assert_eq!(p.len(), n_nops + 2);
    }

    #[test]
    fn segments_are_preserved_verbatim(
        segs in proptest::collection::vec(
            (0u64..0x100_000, proptest::collection::vec(any::<u8>(), 1..64)),
            0..8
        )
    ) {
        let mut a = Assembler::new("segs");
        for (base, bytes) in &segs {
            a.data(*base * 64, bytes.clone());
        }
        a.halt();
        let p = a.finish().expect("assembles");
        prop_assert_eq!(p.segments().len(), segs.len());
        for (seg, (base, bytes)) in p.segments().iter().zip(&segs) {
            prop_assert_eq!(seg.base, base * 64);
            prop_assert_eq!(&seg.data, bytes);
            prop_assert!(!seg.kernel);
        }
    }

    #[test]
    fn display_never_panics(kind in 0u8..8, r in 0usize..32, imm in any::<i64>()) {
        let reg = Reg::from_index(r).expect("valid");
        let inst = match kind {
            0 => Inst::Li { rd: reg, imm },
            1 => Inst::Jump { target: imm.unsigned_abs() as usize },
            2 => Inst::Ret,
            3 => Inst::Flush { base: reg, offset: imm % 4096 },
            4 => Inst::Fence,
            5 => Inst::Membar,
            6 => Inst::RdCycle { rd: reg },
            _ => Inst::Halt,
        };
        let s = inst.to_string();
        prop_assert!(!s.is_empty());
    }
}
