//! The attack-gadget taxonomy shared by the static analyzer and the
//! workload corpus.
//!
//! [`GadgetKind`] names the statically recognizable code patterns that the
//! `uarch-analysis` crate's taint pass reports. It lives in the ISA crate —
//! not the analyzer — so that workload builders can annotate each program
//! with the findings it is *expected* to produce without depending on the
//! analyzer itself, and the analyzer can in turn depend on the workloads for
//! its regression corpus.

/// A statically recognizable attack-gadget pattern.
///
/// Each variant corresponds to one of the invariant code footprints the
/// PerSpectron paper's attack corpus exhibits: the transient-execution
/// disclosure gadgets (Spectre/Meltdown) and the timed cache-channel
/// measurement primitives (Flush+Reload / Flush+Flush / Prime+Probe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GadgetKind {
    /// Spectre-V1 shape: a dependent load pair (a tainted-index load whose
    /// result forms the address of a second load) in the speculative shadow
    /// of a conditional bounds check that resolves against flushed — and
    /// therefore slow — memory.
    SpecBoundsBypass,
    /// Meltdown shape: a load from kernel-space whose (transiently
    /// forwarded) result feeds the address of a second load.
    KernelRead,
    /// Spectre-V2 ingredient: an indirect call or jump whose target register
    /// is derived from memory, letting an attacker steer speculation by
    /// controlling the load's latency or value.
    BtbInjection,
    /// SpectreRSB ingredient: a `setret` that redirects the architectural
    /// return away from the call fall-through, desynchronizing the return
    /// stack so the fall-through executes speculatively.
    RetHijack,
    /// Cache-channel read-out: a load bracketed by two cycle-counter reads
    /// whose difference is computed (the Flush+Reload / Prime+Probe timing
    /// measurement).
    TimedLoad,
    /// Flush+Flush read-out: a `clflush` bracketed by two cycle-counter
    /// reads whose difference is computed (timing the flush itself, the
    /// attack that never loads).
    TimedFlush,
}

impl GadgetKind {
    /// All kinds, in report order.
    pub const ALL: [GadgetKind; 6] = [
        GadgetKind::SpecBoundsBypass,
        GadgetKind::KernelRead,
        GadgetKind::BtbInjection,
        GadgetKind::RetHijack,
        GadgetKind::TimedLoad,
        GadgetKind::TimedFlush,
    ];

    /// Base severity on a 0–100 scale, before the analyzer's structural
    /// aggravators (loop membership, cross-function reach, window depth).
    ///
    /// Ordering rationale: disclosure gadgets that read memory an attacker
    /// could not otherwise touch (kernel reads, bounds bypasses) outrank
    /// control-flow-steering ingredients (BTB injection, return hijack),
    /// which outrank the measurement primitives (timed load/flush) that
    /// only become an attack when paired with a disclosure gadget.
    pub fn base_severity(self) -> u32 {
        match self {
            GadgetKind::KernelRead => 90,
            GadgetKind::SpecBoundsBypass => 80,
            GadgetKind::BtbInjection => 75,
            GadgetKind::RetHijack => 70,
            GadgetKind::TimedLoad => 40,
            GadgetKind::TimedFlush => 40,
        }
    }

    /// Bits exfiltrated per attack iteration through the covert channel the
    /// gadget implements: one byte per transient window for the disclosure
    /// gadgets (the classic one-line-per-byte probe array encoding), one
    /// hit/miss bit per measurement for the timing primitives.
    pub fn bits_per_iteration(self) -> u64 {
        match self {
            GadgetKind::SpecBoundsBypass
            | GadgetKind::KernelRead
            | GadgetKind::BtbInjection
            | GadgetKind::RetHijack => 8,
            GadgetKind::TimedLoad | GadgetKind::TimedFlush => 1,
        }
    }

    /// Short stable identifier used in reports and findings tables.
    pub fn label(self) -> &'static str {
        match self {
            GadgetKind::SpecBoundsBypass => "spec-bounds-bypass",
            GadgetKind::KernelRead => "kernel-read",
            GadgetKind::BtbInjection => "btb-injection",
            GadgetKind::RetHijack => "ret-hijack",
            GadgetKind::TimedLoad => "timed-load",
            GadgetKind::TimedFlush => "timed-flush",
        }
    }
}

impl std::fmt::Display for GadgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_cover_all() {
        let mut labels: Vec<_> = GadgetKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), GadgetKind::ALL.len());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(GadgetKind::TimedLoad.to_string(), "timed-load");
    }
}
