//! The simulated instruction set.
//!
//! A 64-bit RISC-style ISA rich enough to express every attack PoC the
//! PerSpectron paper evaluates: loads/stores with byte granularity (for cache
//! line games), conditional branches and indirect calls/returns (for
//! mistraining predictors, the BTB and the RAS), a `flush` instruction
//! (`clflush`), fences and memory barriers (serializing / non-speculative
//! instructions), a cycle counter read (`rdtsc` — the timing side channel
//! read-out), and simulator mark pseudo-instructions (gem5 `m5ops` analog)
//! that let workloads annotate leak events and attack phases.
//!
//! Programs are built with the [`Assembler`] DSL:
//!
//! ```
//! use uarch_isa::{Assembler, Reg};
//!
//! let mut a = Assembler::new("count_to_ten");
//! let (counter, limit) = (Reg::R1, Reg::R2);
//! a.li(counter, 0);
//! a.li(limit, 10);
//! let top = a.label();
//! a.bind(top);
//! a.addi(counter, counter, 1);
//! a.blt(counter, limit, top);
//! a.halt();
//! let program = a.finish().expect("all labels bound");
//! // 5 emitted instructions plus the implicit `li r0, 0` prologue.
//! assert_eq!(program.code().len(), 6);
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod gadget;
pub mod inst;
pub mod program;
pub mod reg;

pub use asm::{AsmError, Assembler, Label};
pub use gadget::GadgetKind;
pub use inst::{AluOp, Cond, FaluOp, Inst, MarkKind, OpClass, Width};
pub use program::{Program, Segment};
pub use reg::Reg;
