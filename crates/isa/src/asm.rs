//! The assembler DSL: label-based program construction.

use std::fmt;

use crate::inst::{AluOp, Cond, FaluOp, Inst, MarkKind, Width};
use crate::program::{Program, Segment};
use crate::reg::Reg;

/// A forward-referenceable code location handle.
///
/// Created with [`Assembler::label`], placed with [`Assembler::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors produced when finalizing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch/jump/call referenced a label that was never bound.
    UnboundLabel(Label),
    /// A label was bound twice.
    ReboundLabel(Label),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label L{} was never bound", l.0),
            AsmError::ReboundLabel(l) => write!(f, "label L{} was bound twice", l.0),
        }
    }
}

impl std::error::Error for AsmError {}

/// Builds a [`Program`] instruction by instruction.
///
/// Control-flow helpers take [`Label`]s which may be bound before or after
/// use; [`Assembler::finish`] patches every reference.
///
/// # Example
///
/// ```
/// use uarch_isa::{Assembler, Reg};
/// # fn main() -> Result<(), uarch_isa::AsmError> {
/// let mut a = Assembler::new("loop");
/// a.li(Reg::R1, 3);
/// let top = a.label();
/// a.bind(top);
/// a.subi(Reg::R1, Reg::R1, 1);
/// a.bnez(Reg::R1, top);
/// a.halt();
/// let p = a.finish()?;
/// assert_eq!(p.name(), "loop");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Assembler {
    name: String,
    code: Vec<Inst>,
    labels: Vec<Option<usize>>,
    patches: Vec<(usize, Label)>,
    segments: Vec<Segment>,
    fault_handler: Option<Label>,
    /// Register holding constant zero by convention in helpers like `bnez`.
    zero: Reg,
}

impl Assembler {
    /// Creates an empty assembler for a program called `name`.
    ///
    /// Register `R0` is used as the zero-comparand by the `beqz`/`bnez`
    /// helpers; programs using those helpers must keep 0 in `R0` (the
    /// assembler emits `li r0, 0` as the first instruction).
    pub fn new(name: impl Into<String>) -> Self {
        let mut a = Self {
            name: name.into(),
            code: Vec::new(),
            labels: Vec::new(),
            patches: Vec::new(),
            segments: Vec::new(),
            fault_handler: None,
            zero: Reg::R0,
        };
        a.li(a.zero, 0);
        a
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current code position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound (misuse is a programming error
    /// in the workload definition, caught immediately).
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label L{} bound twice",
            label.0
        );
        self.labels[label.0] = Some(self.code.len());
    }

    /// Current code position (index of the next emitted instruction).
    pub fn here(&self) -> usize {
        self.code.len()
    }

    /// Adds an initialized user-space data segment.
    pub fn data(&mut self, base: u64, bytes: impl Into<Vec<u8>>) {
        self.segments.push(Segment {
            base,
            data: bytes.into(),
            kernel: false,
        });
    }

    /// Adds an initialized kernel-only data segment (loads from it fault at
    /// commit; Meltdown territory).
    pub fn kernel_data(&mut self, base: u64, bytes: impl Into<Vec<u8>>) {
        self.segments.push(Segment {
            base,
            data: bytes.into(),
            kernel: true,
        });
    }

    /// Registers the fault handler: committing a faulting instruction
    /// redirects execution to `label` instead of halting.
    pub fn on_fault(&mut self, label: Label) {
        self.fault_handler = Some(label);
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.code.push(inst);
    }

    // ---- moves and ALU ----

    /// `rd = imm`
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.emit(Inst::Li { rd, imm });
    }

    /// `rd = ra` (encoded as `rd = ra + 0`)
    pub fn mv(&mut self, rd: Reg, ra: Reg) {
        self.addi(rd, ra, 0);
    }

    /// `rd = ra op rb`
    pub fn alu(&mut self, op: AluOp, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Inst::Alu { op, rd, ra, rb });
    }

    /// `rd = ra op imm`
    pub fn alui(&mut self, op: AluOp, rd: Reg, ra: Reg, imm: i64) {
        self.emit(Inst::AluI { op, rd, ra, imm });
    }

    /// `rd = ra + rb`
    pub fn add(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluOp::Add, rd, ra, rb);
    }

    /// `rd = ra + imm`
    pub fn addi(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.alui(AluOp::Add, rd, ra, imm);
    }

    /// `rd = ra - rb`
    pub fn sub(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluOp::Sub, rd, ra, rb);
    }

    /// `rd = ra - imm`
    pub fn subi(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.alui(AluOp::Sub, rd, ra, imm);
    }

    /// `rd = ra * rb`
    pub fn mul(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluOp::Mul, rd, ra, rb);
    }

    /// `rd = ra & imm`
    pub fn andi(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.alui(AluOp::And, rd, ra, imm);
    }

    /// `rd = ra & rb`
    pub fn and(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluOp::And, rd, ra, rb);
    }

    /// `rd = ra | rb`
    pub fn or(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluOp::Or, rd, ra, rb);
    }

    /// `rd = ra ^ rb`
    pub fn xor(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluOp::Xor, rd, ra, rb);
    }

    /// `rd = ra ^ imm`
    pub fn xori(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.alui(AluOp::Xor, rd, ra, imm);
    }

    /// `rd = ra << imm`
    pub fn shli(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.alui(AluOp::Shl, rd, ra, imm);
    }

    /// `rd = ra >> imm` (logical)
    pub fn shri(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.alui(AluOp::Shr, rd, ra, imm);
    }

    /// Floating/SIMD op.
    pub fn falu(&mut self, op: FaluOp, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Inst::Falu { op, rd, ra, rb });
    }

    // ---- memory ----

    /// `rd = mem64[ra + offset]`
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.emit(Inst::Load {
            rd,
            base,
            offset,
            width: Width::Double,
            fp: false,
        });
    }

    /// `rd = mem8[ra + offset]`
    pub fn loadb(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.emit(Inst::Load {
            rd,
            base,
            offset,
            width: Width::Byte,
            fp: false,
        });
    }

    /// Float load (`FloatMemRead` op class).
    pub fn floadd(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.emit(Inst::Load {
            rd,
            base,
            offset,
            width: Width::Double,
            fp: true,
        });
    }

    /// `mem64[ra + offset] = rs`
    pub fn store(&mut self, rs: Reg, base: Reg, offset: i64) {
        self.emit(Inst::Store {
            rs,
            base,
            offset,
            width: Width::Double,
            fp: false,
        });
    }

    /// `mem8[ra + offset] = rs`
    pub fn storeb(&mut self, rs: Reg, base: Reg, offset: i64) {
        self.emit(Inst::Store {
            rs,
            base,
            offset,
            width: Width::Byte,
            fp: false,
        });
    }

    /// Float store (`FloatMemWrite` op class).
    pub fn fstored(&mut self, rs: Reg, base: Reg, offset: i64) {
        self.emit(Inst::Store {
            rs,
            base,
            offset,
            width: Width::Double,
            fp: true,
        });
    }

    /// `clflush [ra + offset]`
    pub fn flush(&mut self, base: Reg, offset: i64) {
        self.emit(Inst::Flush { base, offset });
    }

    // ---- control flow ----

    fn branch_to(&mut self, cond: Cond, ra: Reg, rb: Reg, label: Label) {
        self.patches.push((self.code.len(), label));
        self.emit(Inst::Branch {
            cond,
            ra,
            rb,
            target: usize::MAX,
        });
    }

    /// Branch if `ra == rb`.
    pub fn beq(&mut self, ra: Reg, rb: Reg, label: Label) {
        self.branch_to(Cond::Eq, ra, rb, label);
    }

    /// Branch if `ra != rb`.
    pub fn bne(&mut self, ra: Reg, rb: Reg, label: Label) {
        self.branch_to(Cond::Ne, ra, rb, label);
    }

    /// Branch if `ra < rb` (signed).
    pub fn blt(&mut self, ra: Reg, rb: Reg, label: Label) {
        self.branch_to(Cond::Lt, ra, rb, label);
    }

    /// Branch if `ra >= rb` (signed).
    pub fn bge(&mut self, ra: Reg, rb: Reg, label: Label) {
        self.branch_to(Cond::Ge, ra, rb, label);
    }

    /// Branch if `ra < rb` (unsigned).
    pub fn bltu(&mut self, ra: Reg, rb: Reg, label: Label) {
        self.branch_to(Cond::Ltu, ra, rb, label);
    }

    /// Branch if `ra >= rb` (unsigned).
    pub fn bgeu(&mut self, ra: Reg, rb: Reg, label: Label) {
        self.branch_to(Cond::Geu, ra, rb, label);
    }

    /// Branch if `ra == 0` (compares against `R0`).
    pub fn beqz(&mut self, ra: Reg, label: Label) {
        let z = self.zero;
        self.beq(ra, z, label);
    }

    /// Branch if `ra != 0` (compares against `R0`).
    pub fn bnez(&mut self, ra: Reg, label: Label) {
        let z = self.zero;
        self.bne(ra, z, label);
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, label: Label) {
        self.patches.push((self.code.len(), label));
        self.emit(Inst::Jump { target: usize::MAX });
    }

    /// Indirect jump through `base`.
    pub fn jmp_ind(&mut self, base: Reg) {
        self.emit(Inst::JumpInd { base });
    }

    /// Call `label`.
    pub fn call(&mut self, label: Label) {
        self.patches.push((self.code.len(), label));
        self.emit(Inst::Call { target: usize::MAX });
    }

    /// Indirect call through `base`.
    pub fn call_ind(&mut self, base: Reg) {
        self.emit(Inst::CallInd { base });
    }

    /// Return.
    pub fn ret(&mut self) {
        self.emit(Inst::Ret);
    }

    /// Replace the pending return address with the value in `base`
    /// (SpectreRSB's unmatched call/return primitive).
    pub fn set_ret(&mut self, base: Reg) {
        self.emit(Inst::SetRet { base });
    }

    /// Loads the eventual instruction index of `label` into `rd` (for
    /// indirect jumps/calls). Patched at finish.
    pub fn la(&mut self, rd: Reg, label: Label) {
        self.patches.push((self.code.len(), label));
        self.emit(Inst::Li { rd, imm: i64::MAX });
    }

    // ---- system ----

    /// Serializing fence.
    pub fn fence(&mut self) {
        self.emit(Inst::Fence);
    }

    /// Memory barrier (non-speculative).
    pub fn membar(&mut self) {
        self.emit(Inst::Membar);
    }

    /// `rd = cycle counter`
    pub fn rdcycle(&mut self, rd: Reg) {
        self.emit(Inst::RdCycle { rd });
    }

    /// Simulator mark.
    pub fn mark(&mut self, kind: MarkKind) {
        self.emit(Inst::Mark(kind));
    }

    /// No-op.
    pub fn nop(&mut self) {
        self.emit(Inst::Nop);
    }

    /// Halt.
    pub fn halt(&mut self) {
        self.emit(Inst::Halt);
    }

    /// Resolves all label references and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was never
    /// bound.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        for (pos, label) in &self.patches {
            let target = self.labels[label.0].ok_or(AsmError::UnboundLabel(*label))?;
            match &mut self.code[*pos] {
                Inst::Branch { target: t, .. }
                | Inst::Jump { target: t }
                | Inst::Call { target: t } => *t = target,
                Inst::Li { imm, .. } => *imm = target as i64,
                other => unreachable!("patched non-control inst {other:?}"),
            }
        }
        let fault_handler = match self.fault_handler {
            Some(l) => Some(self.labels[l.0].ok_or(AsmError::UnboundLabel(l))?),
            None => None,
        };
        Ok(Program::new(
            self.name,
            self.code,
            self.segments,
            fault_handler,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_references_are_patched() {
        let mut a = Assembler::new("t");
        let end = a.label();
        a.jmp(end);
        a.nop();
        a.bind(end);
        a.halt();
        let p = a.finish().unwrap();
        // code[0] is the implicit `li r0, 0`
        assert_eq!(p.code()[1], Inst::Jump { target: 3 });
    }

    #[test]
    fn backward_references_resolve() {
        let mut a = Assembler::new("t");
        let top = a.label();
        a.bind(top);
        a.bne(Reg::R1, Reg::R2, top);
        let p = a.finish().unwrap();
        assert_eq!(
            p.code()[1],
            Inst::Branch {
                cond: Cond::Ne,
                ra: Reg::R1,
                rb: Reg::R2,
                target: 1
            }
        );
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Assembler::new("t");
        let nowhere = a.label();
        a.jmp(nowhere);
        assert!(matches!(a.finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn binding_twice_panics() {
        let mut a = Assembler::new("t");
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn la_loads_label_address() {
        let mut a = Assembler::new("t");
        let f = a.label();
        a.la(Reg::R5, f);
        a.halt();
        a.bind(f);
        a.ret();
        let p = a.finish().unwrap();
        assert_eq!(
            p.code()[1],
            Inst::Li {
                rd: Reg::R5,
                imm: 3
            }
        );
    }

    #[test]
    fn fault_handler_resolves() {
        let mut a = Assembler::new("t");
        let h = a.label();
        a.on_fault(h);
        a.halt();
        a.bind(h);
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(p.fault_handler(), Some(2));
    }

    #[test]
    fn segments_carry_privilege() {
        let mut a = Assembler::new("t");
        a.data(0x1000, vec![1, 2, 3]);
        a.kernel_data(0x8000, vec![42]);
        a.halt();
        let p = a.finish().unwrap();
        assert!(!p.is_kernel_addr(0x1000));
        assert!(p.is_kernel_addr(0x8000));
    }
}
