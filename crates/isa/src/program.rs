//! Programs: code, initialized data, privilege map and fault handling.

use crate::inst::Inst;

/// An initialized data region of a program's address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Base byte address.
    pub base: u64,
    /// Initial contents.
    pub data: Vec<u8>,
    /// Whether the region is kernel-only (user loads fault at commit, but —
    /// Meltdown-style — data is still forwarded speculatively).
    pub kernel: bool,
}

impl Segment {
    /// The exclusive end address of the segment.
    pub fn end(&self) -> u64 {
        self.base + self.data.len() as u64
    }
}

/// A complete program for the simulated machine.
///
/// Built via the [`Assembler`](crate::Assembler); immutable afterwards.
#[derive(Debug, Clone, Default)]
pub struct Program {
    name: String,
    code: Vec<Inst>,
    segments: Vec<Segment>,
    fault_handler: Option<usize>,
}

impl Program {
    /// Creates a program from parts. Most callers use the assembler instead.
    pub fn new(
        name: impl Into<String>,
        code: Vec<Inst>,
        segments: Vec<Segment>,
        fault_handler: Option<usize>,
    ) -> Self {
        Self {
            name: name.into(),
            code,
            segments,
            fault_handler,
        }
    }

    /// The program's name (workload identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction sequence; the program counter indexes into it.
    pub fn code(&self) -> &[Inst] {
        &self.code
    }

    /// Initialized data segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Instruction index the CPU redirects to when a fault commits (the
    /// workload's signal-handler analog), if any.
    pub fn fault_handler(&self) -> Option<usize> {
        self.fault_handler
    }

    /// Whether `addr` lies in a kernel-only segment.
    pub fn is_kernel_addr(&self, addr: u64) -> bool {
        self.segments
            .iter()
            .any(|s| s.kernel && addr >= s.base && addr < s.end())
    }

    /// The instruction at index `pc`, or `None` past the end.
    pub fn fetch(&self, pc: usize) -> Option<Inst> {
        self.code.get(pc).copied()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn kernel_segments_are_detected() {
        let p = Program::new(
            "t",
            vec![Inst::Halt],
            vec![
                Segment {
                    base: 0x1000,
                    data: vec![0; 64],
                    kernel: false,
                },
                Segment {
                    base: 0x8000,
                    data: vec![0; 64],
                    kernel: true,
                },
            ],
            None,
        );
        assert!(!p.is_kernel_addr(0x1000));
        assert!(p.is_kernel_addr(0x8000));
        assert!(p.is_kernel_addr(0x803f));
        assert!(!p.is_kernel_addr(0x8040));
    }

    #[test]
    fn fetch_past_end_is_none() {
        let p = Program::new("t", vec![Inst::Nop], vec![], None);
        assert_eq!(p.fetch(0), Some(Inst::Nop));
        assert_eq!(p.fetch(1), None);
    }
}
