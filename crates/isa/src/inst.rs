//! Instruction definitions and their op-class taxonomy.

use uarch_stats::StatKey;

use crate::reg::Reg;

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Set if less than (signed): `rd = (ra < rb) as i64`.
    Slt,
    /// Set if less than (unsigned).
    Sltu,
}

impl AluOp {
    /// The op class used for functional-unit selection and the commit
    /// op-class distribution.
    pub fn op_class(self) -> OpClass {
        match self {
            AluOp::Mul => OpClass::IntMult,
            AluOp::Div | AluOp::Rem => OpClass::IntDiv,
            _ => OpClass::IntAlu,
        }
    }
}

/// Floating-point and SIMD operations (operands reinterpret the 64-bit
/// register value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FaluOp {
    FAdd,
    FSub,
    FMul,
    FDiv,
    FSqrt,
    /// Convert integer in `ra` to double.
    FCvtIf,
    /// Convert double in `ra` to integer.
    FCvtFi,
    /// SIMD add: four 16-bit lanes.
    VAdd,
    /// SIMD multiply: four 16-bit lanes (wrapping).
    VMul,
    /// SIMD convert: saturate four 16-bit lanes to bytes.
    VCvt,
}

impl FaluOp {
    /// The op class used for functional-unit selection and the commit
    /// op-class distribution.
    pub fn op_class(self) -> OpClass {
        match self {
            FaluOp::FAdd | FaluOp::FSub => OpClass::FloatAdd,
            FaluOp::FMul => OpClass::FloatMult,
            FaluOp::FDiv => OpClass::FloatDiv,
            FaluOp::FSqrt => OpClass::FloatSqrt,
            FaluOp::FCvtIf | FaluOp::FCvtFi => OpClass::FloatCvt,
            FaluOp::VAdd => OpClass::SimdAdd,
            FaluOp::VMul => OpClass::SimdMult,
            FaluOp::VCvt => OpClass::SimdCvt,
        }
    }
}

/// Branch conditions comparing two registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    Eq,
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl Cond {
    /// Evaluates the condition on two register values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }
}

/// Memory access widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Width {
    Byte,
    Half,
    Word,
    Double,
}

impl Width {
    /// Access size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
            Width::Double => 8,
        }
    }
}

/// Simulator mark pseudo-instruction kinds (the gem5 `m5ops` analog).
///
/// Marks execute as no-ops but the simulator records them with a
/// committed-instruction timestamp, letting experiments know exactly when a
/// workload entered an attack phase or recovered a secret byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MarkKind {
    /// The attacker just recovered (leaked) one secret byte.
    LeakByte,
    /// Start of the priming phase (flush / prime the cache, mistrain).
    PhasePrime,
    /// Start of the speculation / victim-execution phase.
    PhaseSpeculate,
    /// Start of the disclosure (probe / reload / timing) phase.
    PhaseProbe,
    /// One full attack iteration completed.
    IterationEnd,
}

/// One instruction of the simulated ISA.
///
/// Branch/jump/call targets are instruction indices into the program's code
/// (the program counter advances by one per instruction).
///
/// Field conventions: `rd` destination, `ra`/`rb` sources, `rs` store data,
/// `base` address/target register, `offset`/`imm` immediates.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)]
pub enum Inst {
    /// Load immediate: `rd = imm`.
    Li { rd: Reg, imm: i64 },
    /// Integer ALU, register-register: `rd = ra op rb`.
    Alu {
        op: AluOp,
        rd: Reg,
        ra: Reg,
        rb: Reg,
    },
    /// Integer ALU, register-immediate: `rd = ra op imm`.
    AluI {
        op: AluOp,
        rd: Reg,
        ra: Reg,
        imm: i64,
    },
    /// Floating-point / SIMD op: `rd = ra op rb` (unary ops ignore `rb`).
    Falu {
        op: FaluOp,
        rd: Reg,
        ra: Reg,
        rb: Reg,
    },
    /// Load: `rd = mem[ra + offset]`. `fp` marks a float load for op-class
    /// accounting.
    Load {
        rd: Reg,
        base: Reg,
        offset: i64,
        width: Width,
        fp: bool,
    },
    /// Store: `mem[ra + offset] = rs`.
    Store {
        rs: Reg,
        base: Reg,
        offset: i64,
        width: Width,
        fp: bool,
    },
    /// Conditional branch to instruction index `target`.
    Branch {
        cond: Cond,
        ra: Reg,
        rb: Reg,
        target: usize,
    },
    /// Unconditional jump to instruction index `target`.
    Jump { target: usize },
    /// Indirect jump to the instruction index held in `base`.
    JumpInd { base: Reg },
    /// Call: pushes the return address and jumps to `target`.
    Call { target: usize },
    /// Indirect call through `base`.
    CallInd { base: Reg },
    /// Return to the most recent call site.
    Ret,
    /// Replace the most recent return address with the value in `base`
    /// (models overwriting the on-stack return address; the ingredient of
    /// SpectreRSB's unmatched call/return pairs). Serializes at rename so
    /// the register value is architecturally known.
    SetRet { base: Reg },
    /// Flush the cache line containing `ra + offset` from the whole
    /// hierarchy (`clflush`).
    Flush { base: Reg, offset: i64 },
    /// Serializing fence: drains the pipeline before younger instructions
    /// issue (`lfence`-like; rename serializes on it).
    Fence,
    /// Memory barrier: non-speculative, completes at commit (`mfence`-like).
    Membar,
    /// Read the cycle counter into `rd` (`rdtsc`).
    RdCycle { rd: Reg },
    /// Simulator mark pseudo-instruction; executes as a no-op.
    Mark(MarkKind),
    /// No operation.
    Nop,
    /// Stop the program.
    Halt,
}

impl Inst {
    /// The op class, used for functional-unit selection and per-class commit
    /// statistics.
    pub fn op_class(self) -> OpClass {
        match self {
            Inst::Li { .. } => OpClass::IntAlu,
            Inst::Alu { op, .. } | Inst::AluI { op, .. } => op.op_class(),
            Inst::Falu { op, .. } => op.op_class(),
            Inst::Load { fp: false, .. } => OpClass::MemRead,
            Inst::Load { fp: true, .. } => OpClass::FloatMemRead,
            Inst::Store { fp: false, .. } => OpClass::MemWrite,
            Inst::Store { fp: true, .. } => OpClass::FloatMemWrite,
            Inst::Branch { .. }
            | Inst::Jump { .. }
            | Inst::JumpInd { .. }
            | Inst::Call { .. }
            | Inst::CallInd { .. }
            | Inst::Ret => OpClass::IntAlu,
            Inst::Flush { .. } => OpClass::MemWrite,
            Inst::SetRet { .. } => OpClass::IntAlu,
            Inst::Fence
            | Inst::Membar
            | Inst::RdCycle { .. }
            | Inst::Mark(_)
            | Inst::Nop
            | Inst::Halt => OpClass::NoOpClass,
        }
    }

    /// Whether this is any control-flow instruction.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Inst::Branch { .. }
                | Inst::Jump { .. }
                | Inst::JumpInd { .. }
                | Inst::Call { .. }
                | Inst::CallInd { .. }
                | Inst::Ret
        )
    }

    /// Whether this is a memory reference (load, store, or flush).
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::Flush { .. }
        )
    }

    /// Whether rename must serialize on this instruction (drain older
    /// instructions before dispatching it).
    pub fn is_serializing(self) -> bool {
        matches!(
            self,
            Inst::Fence | Inst::RdCycle { .. } | Inst::SetRet { .. }
        )
    }

    /// Whether this instruction is non-speculative: it may only execute once
    /// it reaches the head of the ROB (memory barriers, flushes).
    pub fn is_non_speculative(self) -> bool {
        matches!(self, Inst::Membar | Inst::Flush { .. })
    }

    /// The destination register, if the instruction writes one.
    pub fn dest(self) -> Option<Reg> {
        match self {
            Inst::Li { rd, .. }
            | Inst::Alu { rd, .. }
            | Inst::AluI { rd, .. }
            | Inst::Falu { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::RdCycle { rd } => Some(rd),
            _ => None,
        }
    }

    /// The statically known control-flow target (an instruction index), if
    /// this instruction has one. Indirect jumps/calls and returns have no
    /// static target.
    pub fn static_target(self) -> Option<usize> {
        match self {
            Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target } => {
                Some(target)
            }
            _ => None,
        }
    }

    /// Whether control can reach the next sequential instruction after this
    /// one executes. False for unconditional transfers and `halt`; true for
    /// conditional branches (not-taken path) and calls (via the matching
    /// return).
    pub fn falls_through(self) -> bool {
        !matches!(
            self,
            Inst::Jump { .. } | Inst::JumpInd { .. } | Inst::Ret | Inst::Halt
        )
    }

    /// Whether this instruction terminates a basic block (any control-flow
    /// transfer or `halt`).
    pub fn ends_block(self) -> bool {
        self.is_control() || matches!(self, Inst::Halt)
    }

    /// Whether this is an indirect control transfer (target held in a
    /// register or on the return stack).
    pub fn is_indirect_control(self) -> bool {
        matches!(
            self,
            Inst::JumpInd { .. } | Inst::CallInd { .. } | Inst::Ret
        )
    }

    /// The source registers (up to two).
    pub fn sources(self) -> (Option<Reg>, Option<Reg>) {
        match self {
            Inst::Alu { ra, rb, .. } | Inst::Falu { ra, rb, .. } => (Some(ra), Some(rb)),
            Inst::AluI { ra, .. } => (Some(ra), None),
            Inst::Load { base, .. } => (Some(base), None),
            Inst::Store { rs, base, .. } => (Some(base), Some(rs)),
            Inst::Branch { ra, rb, .. } => (Some(ra), Some(rb)),
            Inst::JumpInd { base } | Inst::CallInd { base } | Inst::SetRet { base } => {
                (Some(base), None)
            }
            Inst::Flush { base, .. } => (Some(base), None),
            _ => (None, None),
        }
    }
}

impl std::fmt::Display for Inst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Inst::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Inst::Alu { op, rd, ra, rb } => write!(f, "{op:?} {rd}, {ra}, {rb}"),
            Inst::AluI { op, rd, ra, imm } => write!(f, "{op:?}i {rd}, {ra}, {imm}"),
            Inst::Falu { op, rd, ra, rb } => write!(f, "{op:?} {rd}, {ra}, {rb}"),
            Inst::Load {
                rd,
                base,
                offset,
                width,
                fp,
            } => {
                write!(
                    f,
                    "{}ld.{:?} {rd}, [{base}{offset:+}]",
                    if fp { "f" } else { "" },
                    width
                )
            }
            Inst::Store {
                rs,
                base,
                offset,
                width,
                fp,
            } => {
                write!(
                    f,
                    "{}st.{:?} {rs}, [{base}{offset:+}]",
                    if fp { "f" } else { "" },
                    width
                )
            }
            Inst::Branch {
                cond,
                ra,
                rb,
                target,
            } => {
                write!(f, "b{cond:?} {ra}, {rb} -> {target}")
            }
            Inst::Jump { target } => write!(f, "jmp {target}"),
            Inst::JumpInd { base } => write!(f, "jmp [{base}]"),
            Inst::Call { target } => write!(f, "call {target}"),
            Inst::CallInd { base } => write!(f, "call [{base}]"),
            Inst::Ret => write!(f, "ret"),
            Inst::SetRet { base } => write!(f, "setret {base}"),
            Inst::Flush { base, offset } => write!(f, "clflush [{base}{offset:+}]"),
            Inst::Fence => write!(f, "fence"),
            Inst::Membar => write!(f, "membar"),
            Inst::RdCycle { rd } => write!(f, "rdcycle {rd}"),
            Inst::Mark(kind) => write!(f, "mark {kind:?}"),
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

/// Functional-unit / commit op classes, mirroring gem5's `OpClass`
/// enumeration (the paper's `commit.op_class_0::*` and `iq.fu_full::*`
/// statistics are vectors over this set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum OpClass {
    NoOpClass,
    IntAlu,
    IntMult,
    IntDiv,
    FloatAdd,
    FloatMult,
    FloatDiv,
    FloatSqrt,
    FloatCvt,
    SimdAdd,
    SimdMult,
    SimdCvt,
    MemRead,
    MemWrite,
    FloatMemRead,
    FloatMemWrite,
}

impl OpClass {
    /// All op classes, in stat order.
    pub const ALL: [OpClass; 16] = [
        OpClass::NoOpClass,
        OpClass::IntAlu,
        OpClass::IntMult,
        OpClass::IntDiv,
        OpClass::FloatAdd,
        OpClass::FloatMult,
        OpClass::FloatDiv,
        OpClass::FloatSqrt,
        OpClass::FloatCvt,
        OpClass::SimdAdd,
        OpClass::SimdMult,
        OpClass::SimdCvt,
        OpClass::MemRead,
        OpClass::MemWrite,
        OpClass::FloatMemRead,
        OpClass::FloatMemWrite,
    ];
}

impl StatKey for OpClass {
    const COUNT: usize = 16;

    fn index(self) -> usize {
        OpClass::ALL
            .iter()
            .position(|&c| c == self)
            .expect("op class in ALL")
    }

    fn label(i: usize) -> &'static str {
        [
            "No_OpClass",
            "IntAlu",
            "IntMult",
            "IntDiv",
            "FloatAdd",
            "FloatMult",
            "FloatDiv",
            "FloatSqrt",
            "FloatCvt",
            "SimdAdd",
            "SimdMult",
            "SimdCvt",
            "MemRead",
            "MemWrite",
            "FloatMemRead",
            "FloatMemWrite",
        ][i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_signed_vs_unsigned() {
        let neg1 = (-1i64) as u64;
        assert!(Cond::Lt.eval(neg1, 0)); // signed: -1 < 0
        assert!(!Cond::Ltu.eval(neg1, 0)); // unsigned: huge >= 0
        assert!(Cond::Geu.eval(neg1, 0));
    }

    #[test]
    fn op_class_of_mul_is_int_mult() {
        let i = Inst::Alu {
            op: AluOp::Mul,
            rd: Reg::R1,
            ra: Reg::R2,
            rb: Reg::R3,
        };
        assert_eq!(i.op_class(), OpClass::IntMult);
    }

    #[test]
    fn float_load_uses_float_mem_read() {
        let i = Inst::Load {
            rd: Reg::R1,
            base: Reg::R2,
            offset: 0,
            width: Width::Double,
            fp: true,
        };
        assert_eq!(i.op_class(), OpClass::FloatMemRead);
    }

    #[test]
    fn serializing_and_non_speculative_sets_are_disjoint_for_fence_membar() {
        assert!(Inst::Fence.is_serializing());
        assert!(!Inst::Fence.is_non_speculative());
        assert!(Inst::Membar.is_non_speculative());
        assert!(!Inst::Membar.is_serializing());
    }

    #[test]
    fn sources_of_store_include_data_register() {
        let i = Inst::Store {
            rs: Reg::R7,
            base: Reg::R8,
            offset: 4,
            width: Width::Byte,
            fp: false,
        };
        assert_eq!(i.sources(), (Some(Reg::R8), Some(Reg::R7)));
        assert_eq!(i.dest(), None);
    }

    #[test]
    fn op_class_stat_key_round_trips() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(OpClass::label(1), "IntAlu");
        assert_eq!(OpClass::label(0), "No_OpClass");
    }

    #[test]
    fn display_disassembles_readably() {
        let i = Inst::Load {
            rd: Reg::R3,
            base: Reg::R7,
            offset: -8,
            width: Width::Byte,
            fp: false,
        };
        assert_eq!(i.to_string(), "ld.Byte r3, [r7-8]");
        assert_eq!(Inst::Ret.to_string(), "ret");
        assert_eq!(Inst::Jump { target: 12 }.to_string(), "jmp 12");
        assert_eq!(
            Inst::Flush {
                base: Reg::R1,
                offset: 0
            }
            .to_string(),
            "clflush [r1+0]"
        );
    }

    #[test]
    fn control_instructions_are_classified() {
        assert!(Inst::Ret.is_control());
        assert!(Inst::Jump { target: 3 }.is_control());
        assert!(!Inst::Nop.is_control());
    }

    #[test]
    fn static_targets_and_fallthrough() {
        let b = Inst::Branch {
            cond: Cond::Eq,
            ra: Reg::R1,
            rb: Reg::R2,
            target: 7,
        };
        assert_eq!(b.static_target(), Some(7));
        assert!(b.falls_through());
        assert!(b.ends_block());

        let j = Inst::Jump { target: 3 };
        assert_eq!(j.static_target(), Some(3));
        assert!(!j.falls_through());

        let c = Inst::Call { target: 9 };
        assert_eq!(c.static_target(), Some(9));
        assert!(c.falls_through(), "calls return to their fall-through");

        assert_eq!(Inst::Ret.static_target(), None);
        assert!(!Inst::Ret.falls_through());
        assert!(Inst::Ret.is_indirect_control());
        assert!(Inst::CallInd { base: Reg::R5 }.is_indirect_control());

        assert!(Inst::Halt.ends_block());
        assert!(!Inst::Halt.falls_through());
        assert!(!Inst::Nop.ends_block());
        assert!(Inst::Nop.falls_through());
    }
}
