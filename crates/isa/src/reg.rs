//! Architectural registers.

/// One of the 32 architectural general-purpose registers.
///
/// `R0` is an ordinary register (not hardwired to zero). The same register
/// file holds integer and floating-point values; float instructions
/// reinterpret the 64 bits as an IEEE-754 double.
///
/// # Example
///
/// ```
/// use uarch_isa::Reg;
/// assert_eq!(Reg::R5.index(), 5);
/// assert_eq!(Reg::from_index(5), Some(Reg::R5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    R16,
    R17,
    R18,
    R19,
    R20,
    R21,
    R22,
    R23,
    R24,
    R25,
    R26,
    R27,
    R28,
    R29,
    R30,
    R31,
}

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// All registers, in index order.
    pub const ALL: [Reg; 32] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
        Reg::R16,
        Reg::R17,
        Reg::R18,
        Reg::R19,
        Reg::R20,
        Reg::R21,
        Reg::R22,
        Reg::R23,
        Reg::R24,
        Reg::R25,
        Reg::R26,
        Reg::R27,
        Reg::R28,
        Reg::R29,
        Reg::R30,
        Reg::R31,
    ];

    /// The register's index in `0..32`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The register with index `i`, or `None` if `i >= 32`.
    pub fn from_index(i: usize) -> Option<Reg> {
        Reg::ALL.get(i).copied()
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for i in 0..Reg::COUNT {
            assert_eq!(Reg::from_index(i).unwrap().index(), i);
        }
        assert_eq!(Reg::from_index(32), None);
    }

    #[test]
    fn display_uses_r_prefix() {
        assert_eq!(Reg::R17.to_string(), "r17");
    }
}
