//! Property-based tests for the memory substrate.

use proptest::prelude::*;
use sim_mem::{Cache, CacheConfig, HierarchyConfig, MemCmd, Memory, MemoryHierarchy};

proptest! {
    #[test]
    fn memory_read_back_equals_last_write(
        writes in proptest::collection::vec((0u64..0x10_000, 0u8..4, any::<u64>()), 1..60)
    ) {
        let mut mem = Memory::new();
        let mut model = std::collections::HashMap::<u64, u8>::new();
        for (addr, size_sel, value) in writes {
            let size = [1u64, 2, 4, 8][size_sel as usize];
            mem.write(addr, size, value);
            for i in 0..size {
                model.insert(addr + i, (value >> (8 * i)) as u8);
            }
        }
        for (addr, byte) in model {
            prop_assert_eq!(mem.read_byte(addr), byte);
        }
    }

    #[test]
    fn cache_hits_plus_misses_equal_accesses(
        addrs in proptest::collection::vec(0u64..0x8000, 1..300)
    ) {
        let mut cache = Cache::new(CacheConfig::l1d());
        for (i, &addr) in addrs.iter().enumerate() {
            let r = cache.access(MemCmd::ReadReq, addr, i as u64 * 10);
            if !r.hit && r.coalesced_ready_at.is_none() {
                cache.complete_miss(MemCmd::ReadReq, addr, i as u64 * 10, 100);
                cache.fill(addr, false, false);
            }
        }
        let s = cache.stats();
        prop_assert_eq!(
            s.cmd.hits(MemCmd::ReadReq) + s.cmd.misses(MemCmd::ReadReq),
            s.cmd.accesses(MemCmd::ReadReq)
        );
    }

    #[test]
    fn repeated_access_to_same_line_eventually_hits(
        addr in 0u64..0x10_0000
    ) {
        let mut cache = Cache::new(CacheConfig::l1d());
        let r0 = cache.access(MemCmd::ReadReq, addr, 0);
        prop_assert!(!r0.hit);
        cache.complete_miss(MemCmd::ReadReq, addr, 0, 50);
        cache.fill(addr, false, false);
        let r1 = cache.access(MemCmd::ReadReq, addr, 1000);
        prop_assert!(r1.hit);
    }

    #[test]
    fn hierarchy_load_returns_functional_value(
        pairs in proptest::collection::vec((0u64..0x4000, any::<u64>()), 1..40)
    ) {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default());
        let mut now = 0u64;
        for (addr, value) in &pairs {
            let addr = addr * 8; // aligned
            now += h.store(addr, 8, *value, now) + 1;
        }
        // Last write wins per address.
        let mut model = std::collections::HashMap::new();
        for (addr, value) in &pairs {
            model.insert(addr * 8, *value);
        }
        for (addr, value) in model {
            let r = h.load(addr, 8, now);
            now += r.latency + 1;
            prop_assert_eq!(r.value, value);
        }
    }

    #[test]
    fn flush_always_leaves_line_uncached(
        addrs in proptest::collection::vec(0u64..0x8000, 1..40)
    ) {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default());
        let mut now = 0;
        for &addr in &addrs {
            let r = h.load(addr, 1, now);
            now += r.latency + 1;
            now += h.flush_line(addr, now) + 1;
            prop_assert!(!h.cached_in_l1d(addr));
            prop_assert!(h.l2().probe(addr).is_none());
        }
    }
}
