//! Packet-typed interconnects with transaction-distribution statistics.

use uarch_stats::{stat_group, Counter, StatGroup, StatVisitor, VectorStat};

use crate::cmd::MemCmd;

stat_group! {
    /// Snoop-filter statistics (single requestor, so these count lookups
    /// rather than filtering effectiveness).
    pub struct SnoopFilterStats {
        /// Requests examined by the snoop filter.
        pub tot_requests: Counter => "tot_requests",
        /// Requests whose line had a single holder.
        pub hit_single_requests: Counter => "hit_single_requests",
        /// Snoops examined.
        pub tot_snoops: Counter => "tot_snoops",
    }
}

stat_group! {
    /// Statistics for one crossbar/bus.
    pub struct BusStats {
        /// Transaction distribution per memory command
        /// (`trans_dist::ReadSharedReq`, `trans_dist::CleanEvict`, ...).
        pub trans_dist: VectorStat<MemCmd> => "trans_dist",
        /// Total packets.
        pub pkt_count: Counter => "pkt_count",
        /// Total payload bytes.
        pub pkt_size: Counter => "pkt_size",
        /// Payload bytes per memory command.
        pub pkt_bytes: VectorStat<MemCmd> => "pkt_size_dist",
        /// Request-class packets.
        pub req_count: Counter => "reqCount",
        /// Response-class packets.
        pub resp_count: Counter => "respCount",
        /// Cycles the bus was occupied by transfers.
        pub utilization_cycles: Counter => "utilizedCycles",
        /// Requests that had to retry because the bus was busy.
        pub retries: Counter => "numRetries",
        /// Snoop filter statistics.
        pub snoop_filter: SnoopFilterStats => "snoop_filter",
    }
}

/// A crossbar connecting cache levels (gem5 `tol2bus` / `membus`).
///
/// Timing: a fixed per-packet transfer latency plus a busy model — if a
/// packet arrives while a previous transfer is still in flight it waits.
///
/// # Example
///
/// ```
/// use sim_mem::{Bus, MemCmd};
/// let mut bus = Bus::new(2);
/// let l0 = bus.send(MemCmd::ReadSharedReq, 64, 0);
/// assert_eq!(l0, 2);
/// let l1 = bus.send(MemCmd::ReadResp, 64, 0); // bus still busy
/// assert!(l1 > 2);
/// ```
#[derive(Debug)]
pub struct Bus {
    stats: BusStats,
    transfer_latency: u64,
    busy_until: u64,
}

impl Bus {
    /// Creates a bus with the given per-packet transfer latency.
    pub fn new(transfer_latency: u64) -> Self {
        Self {
            stats: BusStats::default(),
            transfer_latency,
            busy_until: 0,
        }
    }

    /// Sends one packet at cycle `now`; returns the latency until it is
    /// delivered (including any wait for the bus to free up).
    pub fn send(&mut self, cmd: MemCmd, bytes: u64, now: u64) -> u64 {
        self.stats.trans_dist.inc(cmd);
        self.stats.pkt_count.inc();
        self.stats.pkt_size.add(bytes);
        self.stats.pkt_bytes.add(cmd, bytes);
        if matches!(cmd, MemCmd::ReadResp | MemCmd::WriteResp) {
            self.stats.resp_count.inc();
        } else {
            self.stats.req_count.inc();
        }
        self.stats.snoop_filter.tot_requests.inc();
        if !cmd.is_eviction() {
            self.stats.snoop_filter.hit_single_requests.inc();
        }

        let wait = self.busy_until.saturating_sub(now);
        if wait > 0 {
            self.stats.retries.inc();
        }
        let start = now + wait;
        self.busy_until = start + self.transfer_latency;
        self.stats.utilization_cycles.add(self.transfer_latency);
        wait + self.transfer_latency
    }

    /// Records `n` delivered snoop invalidations on the snoop filter —
    /// multi-core back-invalidations of lines that left the shared L2 or
    /// were requested exclusively by another core. A single-requestor bus
    /// never snoops, so `tot_snoops` stays zero on single-core machines.
    pub fn record_snoops(&mut self, n: u64) {
        self.stats.snoop_filter.tot_snoops.add(n);
    }

    /// The bus statistics.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }
}

impl StatGroup for Bus {
    fn visit(&self, prefix: &str, v: &mut dyn StatVisitor) {
        self.stats.visit(prefix, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trans_dist_counts_per_command() {
        let mut b = Bus::new(1);
        b.send(MemCmd::CleanEvict, 0, 0);
        b.send(MemCmd::CleanEvict, 0, 10);
        b.send(MemCmd::ReadSharedReq, 64, 20);
        assert_eq!(b.stats().trans_dist.get(MemCmd::CleanEvict), 2);
        assert_eq!(b.stats().trans_dist.get(MemCmd::ReadSharedReq), 1);
        assert_eq!(b.stats().pkt_count.value(), 3);
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut b = Bus::new(4);
        assert_eq!(b.send(MemCmd::ReadReq, 64, 100), 4);
        // Arrives while the first transfer occupies the bus.
        assert_eq!(b.send(MemCmd::ReadResp, 64, 101), 3 + 4);
        assert_eq!(b.stats().retries.value(), 1);
    }

    #[test]
    fn idle_bus_adds_no_wait() {
        let mut b = Bus::new(4);
        b.send(MemCmd::ReadReq, 64, 0);
        assert_eq!(b.send(MemCmd::ReadReq, 64, 50), 4);
    }
}
