//! A min-ordered event calendar for memory-side completion times.
//!
//! The caches used to find "the earliest outstanding miss" and "the
//! earliest write-buffer drain" with linear `.iter().min()` scans over
//! their MSHR and write-buffer vectors on every access. The calendar keeps
//! those completion times in a binary min-heap instead, so the hot path
//! pops the earliest event in O(log n) and — crucially for the core's
//! tick-skipping — can answer "when does the next memory event happen?"
//! in O(1) via [`EventCalendar::peek`].
//!
//! Cancellation (a flush invalidating an outstanding MSHR) is lazy: the
//! cancelled `(ready, key)` pair is remembered in a side table and the
//! matching heap entry is discarded when it surfaces. This keeps
//! cancellation O(1) while preserving the exact multiset semantics of the
//! vectors the calendar mirrors: the minimum reported by [`peek`] is
//! always identical to what a linear scan of the live entries would find.
//!
//! [`peek`]: EventCalendar::peek

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A scheduled event: completion cycle plus an opaque key (the caches use
/// the line address; keyless users pass 0).
pub type Event = (u64, u64);

/// A binary-heap event calendar with lazy cancellation.
///
/// Duplicate `(ready, key)` pairs are allowed and behave as a multiset —
/// scheduling twice requires popping (or cancelling) twice.
#[derive(Debug, Default, Clone)]
pub struct EventCalendar {
    heap: BinaryHeap<Reverse<Event>>,
    /// Cancelled-but-not-yet-surfaced events, with multiplicity.
    cancelled: HashMap<Event, u32>,
    /// Live (non-cancelled) event count.
    live: usize,
}

impl EventCalendar {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (scheduled and not cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules an event completing at `ready`.
    pub fn schedule(&mut self, ready: u64, key: u64) {
        self.heap.push(Reverse((ready, key)));
        self.live += 1;
    }

    /// Cancels one previously scheduled `(ready, key)` event. The heap
    /// entry is discarded lazily when it reaches the front.
    pub fn cancel(&mut self, ready: u64, key: u64) {
        *self.cancelled.entry((ready, key)).or_insert(0) += 1;
        self.live -= 1;
    }

    /// Drops cancelled entries off the front of the heap.
    fn settle(&mut self) {
        while let Some(&Reverse(ev)) = self.heap.peek() {
            match self.cancelled.get_mut(&ev) {
                Some(n) => {
                    *n -= 1;
                    if *n == 0 {
                        self.cancelled.remove(&ev);
                    }
                    self.heap.pop();
                }
                None => break,
            }
        }
    }

    /// The earliest live event, without removing it.
    pub fn peek(&mut self) -> Option<Event> {
        self.settle();
        self.heap.peek().map(|&Reverse(ev)| ev)
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<Event> {
        self.settle();
        let ev = self.heap.pop().map(|Reverse(ev)| ev);
        if ev.is_some() {
            self.live -= 1;
        }
        ev
    }

    /// Pops every live event with `ready <= now` (MSHR retirement).
    pub fn pop_due(&mut self, now: u64) {
        while let Some((ready, _)) = self.peek() {
            if ready > now {
                break;
            }
            self.pop();
        }
    }

    /// Removes all events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_ready_order() {
        let mut c = EventCalendar::new();
        c.schedule(30, 3);
        c.schedule(10, 1);
        c.schedule(20, 2);
        assert_eq!(c.peek(), Some((10, 1)));
        assert_eq!(c.pop(), Some((10, 1)));
        assert_eq!(c.pop(), Some((20, 2)));
        assert_eq!(c.pop(), Some((30, 3)));
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn cancelled_events_never_surface() {
        let mut c = EventCalendar::new();
        c.schedule(10, 1);
        c.schedule(20, 2);
        c.cancel(10, 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(), Some((20, 2)));
    }

    #[test]
    fn duplicate_events_are_a_multiset() {
        let mut c = EventCalendar::new();
        c.schedule(10, 1);
        c.schedule(10, 1);
        c.cancel(10, 1);
        assert_eq!(c.pop(), Some((10, 1)));
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn pop_due_retires_everything_at_or_before_now() {
        let mut c = EventCalendar::new();
        for t in [5, 10, 15, 20] {
            c.schedule(t, t);
        }
        c.pop_due(12);
        assert_eq!(c.peek(), Some((15, 15)));
        assert_eq!(c.len(), 2);
    }
}
