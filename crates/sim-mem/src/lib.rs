//! The memory substrate: caches, buses, DRAM.
//!
//! Mirrors gem5's classic memory system closely enough that the statistics
//! the PerSpectron paper selects features from all exist with their gem5
//! names: per-command cache stats (`dcache.ReadReq_mshr_misses`,
//! `l2.ReadSharedReq_miss_latency`), bus transaction distributions
//! (`tol2bus.trans_dist::CleanEvict`), and DRAM controller stats
//! (`mem_ctrls.bytesReadWrQ`, `mem_ctrls.bytesPerActivate`,
//! `mem_ctrls.wrPerTurnAround`, `mem_ctrls.selfRefreshEnergy`).
//!
//! Design: the hierarchy is a *timing and state* model; data lives in the
//! flat [`Memory`] backing store and is accessed functionally. With a single
//! core and no DMA this is exact, and it keeps the out-of-order core free to
//! replay/squash memory operations without corrupting data.
//!
//! # Example
//!
//! ```
//! use sim_mem::{HierarchyConfig, MemoryHierarchy};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
//! mem.memory_mut().write(0x1000, 8, 0xdead_beef);
//! let miss = mem.load(0x1000, 8, 0);
//! let hit = mem.load(0x1000, 8, miss.latency);
//! assert!(hit.latency < miss.latency, "second access hits in L1D");
//! assert_eq!(hit.value, 0xdead_beef);
//! ```

#![warn(missing_docs)]

pub mod bus;
pub mod cache;
pub mod calendar;
pub mod cmd;
pub mod dram;
pub mod error;
pub mod hierarchy;
pub mod memory;
pub mod uncore;

pub use bus::Bus;
pub use cache::{Cache, CacheConfig};
pub use calendar::EventCalendar;
pub use cmd::MemCmd;
pub use dram::{DramConfig, MemCtrl, PowerState};
pub use error::MemError;
pub use hierarchy::{AccessOutcome, HierarchyConfig, LoadResult, MemoryHierarchy};
pub use memory::Memory;
pub use uncore::{ArbiterStats, PendingInvalidation, Uncore, UncoreHandle};
