//! Memory packet commands, mirroring gem5's `MemCmd`.

use uarch_stats::StatKey;

/// Command carried by a memory packet.
///
/// The subset of gem5's `MemCmd` that a single-core classic hierarchy
/// produces. Buses record one [`trans_dist`](crate::Bus) entry per command;
/// caches keep per-command access/hit/miss statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemCmd {
    /// Demand data read request (CPU → L1D).
    ReadReq,
    /// Data returned for any read-class request.
    ReadResp,
    /// Demand data write request (CPU → L1D).
    WriteReq,
    /// Acknowledgement of a write.
    WriteResp,
    /// Read that may be shared (L1D read miss → L2).
    ReadSharedReq,
    /// Read of a clean (instruction) line (L1I miss → L2).
    ReadCleanReq,
    /// Read for exclusive ownership (write miss → L2/memory).
    ReadExReq,
    /// Eviction of a dirty line, carrying data.
    WritebackDirty,
    /// Eviction of a clean line that still writes data back (exclusive but
    /// unmodified lines).
    WritebackClean,
    /// Notification that a clean line was dropped (no data).
    CleanEvict,
    /// Cache line flush (`clflush`) request.
    FlushReq,
    /// Invalidate a line without data transfer.
    InvalidateReq,
    /// Upgrade a shared line to exclusive without data transfer.
    UpgradeReq,
}

impl MemCmd {
    /// Number of distinct commands (equals `<MemCmd as StatKey>::COUNT`).
    pub const COUNT: usize = 13;

    /// All commands, in stat order.
    pub const ALL: [MemCmd; 13] = [
        MemCmd::ReadReq,
        MemCmd::ReadResp,
        MemCmd::WriteReq,
        MemCmd::WriteResp,
        MemCmd::ReadSharedReq,
        MemCmd::ReadCleanReq,
        MemCmd::ReadExReq,
        MemCmd::WritebackDirty,
        MemCmd::WritebackClean,
        MemCmd::CleanEvict,
        MemCmd::FlushReq,
        MemCmd::InvalidateReq,
        MemCmd::UpgradeReq,
    ];

    /// Whether the command expects data back (and therefore generates a
    /// `ReadResp` on the same bus).
    pub fn needs_response(self) -> bool {
        matches!(
            self,
            MemCmd::ReadReq | MemCmd::ReadSharedReq | MemCmd::ReadCleanReq | MemCmd::ReadExReq
        )
    }

    /// Whether the command is an eviction (writeback or clean-evict).
    pub fn is_eviction(self) -> bool {
        matches!(
            self,
            MemCmd::WritebackDirty | MemCmd::WritebackClean | MemCmd::CleanEvict
        )
    }
}

impl StatKey for MemCmd {
    const COUNT: usize = 13;

    fn index(self) -> usize {
        MemCmd::ALL
            .iter()
            .position(|&c| c == self)
            .expect("cmd in ALL")
    }

    fn label(i: usize) -> &'static str {
        [
            "ReadReq",
            "ReadResp",
            "WriteReq",
            "WriteResp",
            "ReadSharedReq",
            "ReadCleanReq",
            "ReadExReq",
            "WritebackDirty",
            "WritebackClean",
            "CleanEvict",
            "FlushReq",
            "InvalidateReq",
            "UpgradeReq",
        ][i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_key_indices_are_dense() {
        for (i, c) in MemCmd::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn read_class_commands_need_responses() {
        assert!(MemCmd::ReadSharedReq.needs_response());
        assert!(MemCmd::ReadCleanReq.needs_response());
        assert!(!MemCmd::WritebackDirty.needs_response());
        assert!(!MemCmd::CleanEvict.needs_response());
    }

    #[test]
    fn eviction_classification() {
        assert!(MemCmd::CleanEvict.is_eviction());
        assert!(MemCmd::WritebackClean.is_eviction());
        assert!(!MemCmd::ReadReq.is_eviction());
    }
}
