//! Set-associative caches with MSHRs and write buffers.

use uarch_stats::{stat_group, Counter, Distribution, StatGroup, StatItem, StatVisitor};

use crate::calendar::EventCalendar;
use crate::cmd::MemCmd;
use crate::error::MemError;

/// Geometry and timing of one cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Tag lookup latency in cycles.
    pub tag_latency: u64,
    /// Data array latency in cycles.
    pub data_latency: u64,
    /// Latency to forward a response upward.
    pub response_latency: u64,
    /// Miss status handling registers (outstanding misses).
    pub mshrs: usize,
    /// Targets (coalesced requests) per MSHR.
    pub tgts_per_mshr: usize,
    /// Write buffers for evictions in flight.
    pub write_buffers: usize,
    /// Whether clean exclusive evictions emit `WritebackClean` (data) rather
    /// than `CleanEvict` (notification only).
    pub writeback_clean: bool,
}

impl CacheConfig {
    /// The paper's L1 I-cache: 32 KB, 64 B lines, 4-way.
    pub fn l1i() -> Self {
        Self {
            size: 32 * 1024,
            assoc: 4,
            line: 64,
            tag_latency: 1,
            data_latency: 1,
            response_latency: 1,
            mshrs: 4,
            tgts_per_mshr: 8,
            write_buffers: 4,
            writeback_clean: true,
        }
    }

    /// The paper's L1 D-cache: 64 KB, 64 B lines, 8-way.
    pub fn l1d() -> Self {
        Self {
            size: 64 * 1024,
            assoc: 8,
            line: 64,
            tag_latency: 2,
            data_latency: 2,
            response_latency: 2,
            mshrs: 10,
            tgts_per_mshr: 8,
            write_buffers: 8,
            writeback_clean: false,
        }
    }

    /// The paper's shared L2: 2 MB, 64 B lines, 8-way, 20-cycle tag/data/
    /// response latencies, 20 MSHRs, 12 targets per MSHR, 8 write buffers.
    pub fn l2() -> Self {
        Self {
            size: 2 * 1024 * 1024,
            assoc: 8,
            line: 64,
            tag_latency: 20,
            data_latency: 20,
            response_latency: 20,
            mshrs: 20,
            tgts_per_mshr: 12,
            write_buffers: 8,
            writeback_clean: false,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size / (self.line * self.assoc)
    }
}

/// Coherence-ish state of a resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Clean, potentially shared (filled by a read).
    Shared,
    /// Clean but exclusively owned (filled by a read-for-ownership that was
    /// never written).
    Exclusive,
    /// Modified.
    Dirty,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: LineState,
    last_use: u64,
    valid: bool,
}

/// A line evicted to make room for a fill (or removed by a flush).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line-aligned address of the victim.
    pub addr: u64,
    /// The packet the eviction sends downstream.
    pub cmd: MemCmd,
}

/// Per-command counters emitted as `{Cmd}_{stat}` — gem5's flat cache stat
/// names (`ReadReq_hits`, `ReadSharedReq_mshr_miss_latency`, ...).
#[derive(Debug, Clone)]
pub struct PerCmdStats {
    hits: [u64; MemCmd::COUNT],
    hit_latency: [u64; MemCmd::COUNT],
    misses: [u64; MemCmd::COUNT],
    accesses: [u64; MemCmd::COUNT],
    miss_latency: [u64; MemCmd::COUNT],
    mshr_hits: [u64; MemCmd::COUNT],
    mshr_misses: [u64; MemCmd::COUNT],
    mshr_miss_latency: [u64; MemCmd::COUNT],
}

impl Default for PerCmdStats {
    fn default() -> Self {
        Self {
            hits: [0; MemCmd::COUNT],
            hit_latency: [0; MemCmd::COUNT],
            misses: [0; MemCmd::COUNT],
            accesses: [0; MemCmd::COUNT],
            miss_latency: [0; MemCmd::COUNT],
            mshr_hits: [0; MemCmd::COUNT],
            mshr_misses: [0; MemCmd::COUNT],
            mshr_miss_latency: [0; MemCmd::COUNT],
        }
    }
}

impl PerCmdStats {
    fn idx(cmd: MemCmd) -> usize {
        use uarch_stats::StatKey;
        cmd.index()
    }

    /// Total hits for `cmd`.
    pub fn hits(&self, cmd: MemCmd) -> u64 {
        self.hits[Self::idx(cmd)]
    }

    /// Total misses for `cmd`.
    pub fn misses(&self, cmd: MemCmd) -> u64 {
        self.misses[Self::idx(cmd)]
    }

    /// Total accesses for `cmd`.
    pub fn accesses(&self, cmd: MemCmd) -> u64 {
        self.accesses[Self::idx(cmd)]
    }
}

impl StatItem for PerCmdStats {
    fn visit_item(&self, prefix: &str, _name: &str, v: &mut dyn StatVisitor) {
        use std::fmt::Write;
        use uarch_stats::StatKey;
        // One scratch name reused across all per-command statistics: this
        // walk runs once per sampling interval on every cache in the
        // hierarchy, so nine format! calls per command label add up.
        let mut sub = String::with_capacity(32);
        let mut emit = |sub: &mut String, label: &str, suffix: &str, value: f64| {
            sub.clear();
            let _ = write!(sub, "{label}{suffix}");
            v.scalar(prefix, sub, value);
        };
        for i in 0..MemCmd::COUNT {
            let label = MemCmd::label(i);
            emit(&mut sub, label, "_hits", self.hits[i] as f64);
            emit(&mut sub, label, "_hit_latency", self.hit_latency[i] as f64);
            let avg_miss = if self.misses[i] == 0 {
                0.0
            } else {
                self.miss_latency[i] as f64 / self.misses[i] as f64
            };
            emit(&mut sub, label, "_avg_miss_latency", avg_miss);
            emit(&mut sub, label, "_misses", self.misses[i] as f64);
            emit(&mut sub, label, "_accesses", self.accesses[i] as f64);
            emit(
                &mut sub,
                label,
                "_miss_latency",
                self.miss_latency[i] as f64,
            );
            emit(&mut sub, label, "_mshr_hits", self.mshr_hits[i] as f64);
            emit(&mut sub, label, "_mshr_misses", self.mshr_misses[i] as f64);
            emit(
                &mut sub,
                label,
                "_mshr_miss_latency",
                self.mshr_miss_latency[i] as f64,
            );
        }
    }
}

stat_group! {
    /// Aggregate (non-per-command) cache statistics.
    pub struct CacheAggStats {
        /// Demand (ReadReq/WriteReq/fetch) hits.
        pub demand_hits: Counter => "demand_hits",
        /// Demand misses.
        pub demand_misses: Counter => "demand_misses",
        /// Demand accesses.
        pub demand_accesses: Counter => "demand_accesses",
        /// All hits.
        pub overall_hits: Counter => "overall_hits",
        /// All misses.
        pub overall_misses: Counter => "overall_misses",
        /// All accesses.
        pub overall_accesses: Counter => "overall_accesses",
        /// Victim lines replaced by fills.
        pub replacements: Counter => "replacements",
        /// Dirty lines written back.
        pub writebacks: Counter => "writebacks",
        /// Events blocked for want of an MSHR.
        pub blocked_no_mshrs: Counter => "blocked::no_mshrs",
        /// Events blocked for want of an MSHR target slot.
        pub blocked_no_targets: Counter => "blocked::no_targets",
        /// Cycles spent blocked for want of an MSHR.
        pub blocked_cycles_no_mshrs: Counter => "blocked_cycles::no_mshrs",
        /// Cycles spent blocked for want of an MSHR target slot.
        pub blocked_cycles_no_targets: Counter => "blocked_cycles::no_targets",
        /// Valid tags currently in use (sampled at access time).
        pub tags_in_use: Counter => "tagsinuse",
        /// Lines invalidated by flushes.
        pub flush_invalidations: Counter => "flush_invalidations",
        /// Flushes that found the line resident.
        pub flush_hits: Counter => "flush_hits",
        /// Events blocked for want of a write buffer.
        pub wb_full_events: Counter => "writeBufferFullEvents",
    }
}

/// Full statistics of one cache.
#[derive(Debug, Default, Clone)]
pub struct CacheStats {
    /// Per-command counters.
    pub cmd: PerCmdStats,
    /// Aggregates.
    pub agg: CacheAggStats,
    /// Demand miss latency distribution.
    pub miss_latency_dist: MissLatencyDist,
    /// Valid ways in the accessed set, sampled per access.
    pub set_occupancy: SetOccupancyDist,
}

/// Wrapper giving the set-occupancy distribution a default bucket layout.
#[derive(Debug, Clone)]
pub struct SetOccupancyDist(pub Distribution);

impl Default for SetOccupancyDist {
    fn default() -> Self {
        Self(Distribution::new(0.0, 9.0, 9))
    }
}

/// Wrapper giving the miss-latency distribution a default bucket layout.
#[derive(Debug, Clone)]
pub struct MissLatencyDist(pub Distribution);

impl Default for MissLatencyDist {
    fn default() -> Self {
        Self(Distribution::new(0.0, 400.0, 8))
    }
}

impl StatGroup for CacheStats {
    fn visit(&self, prefix: &str, v: &mut dyn StatVisitor) {
        self.cmd.visit_item(prefix, "", v);
        self.agg.visit(prefix, v);
        self.miss_latency_dist
            .0
            .visit_item(prefix, "missLatencyDist", v);
        self.set_occupancy
            .0
            .visit_item(prefix, "setOccupancyDist", v);
    }
}

/// Result of a timing access.
#[derive(Debug, Clone)]
pub struct AccessResult {
    /// Whether the line was resident.
    pub hit: bool,
    /// Cycles consumed at this level (excluding downstream on a miss).
    pub latency: u64,
    /// If an MSHR for this line was already outstanding, the absolute cycle
    /// at which it completes.
    pub coalesced_ready_at: Option<u64>,
}

/// One level of cache: timing + state, no data.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    /// Outstanding misses: (line address, completion cycle, target count).
    mshrs: Vec<(u64, u64, usize)>,
    /// Completion times of `mshrs`, min-ordered. Mirrors the vector
    /// exactly (every `(ready, tag)` here has a live `(tag, ready, _)`
    /// entry there), so its minimum equals a linear scan's by
    /// construction.
    mshr_events: EventCalendar,
    /// CEASER-style index randomization key (XORed into the set index).
    index_key: u64,
    /// Write buffer entries in flight: completion cycles.
    wb_entries: Vec<u64>,
    /// Completion times of `wb_entries`, min-ordered (same mirror
    /// discipline as `mshr_events`).
    wb_events: EventCalendar,
    use_clock: u64,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate; prefer [`Cache::try_new`]
    /// for a typed error.
    pub fn new(cfg: CacheConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("degenerate cache geometry: {e}"))
    }

    /// Builds a cache, rejecting degenerate geometry with a typed error
    /// instead of panicking. The checks establish the invariants the
    /// access paths rely on — in particular `write_buffers >= 1`, which
    /// guarantees [`Cache::reserve_write_buffer`] always finds an entry
    /// to drain when the buffers are full.
    pub fn try_new(cfg: CacheConfig) -> Result<Self, MemError> {
        let geometry = |param, value, reason| MemError::InvalidGeometry {
            param,
            value,
            reason,
        };
        if !cfg.line.is_power_of_two() {
            return Err(geometry("line", cfg.line, "must be a power of two"));
        }
        if cfg.assoc == 0 {
            return Err(geometry("assoc", cfg.assoc, "must be at least 1"));
        }
        let sets = cfg.sets();
        if sets == 0 {
            return Err(geometry("size", cfg.size, "yields zero sets"));
        }
        if cfg.mshrs == 0 {
            return Err(geometry("mshrs", cfg.mshrs, "must be at least 1"));
        }
        if cfg.tgts_per_mshr == 0 {
            return Err(geometry(
                "tgts_per_mshr",
                cfg.tgts_per_mshr,
                "must be at least 1",
            ));
        }
        if cfg.write_buffers == 0 {
            return Err(geometry(
                "write_buffers",
                cfg.write_buffers,
                "must be at least 1",
            ));
        }
        Ok(Self {
            sets: vec![
                vec![
                    Line {
                        tag: 0,
                        state: LineState::Shared,
                        last_use: 0,
                        valid: false
                    };
                    cfg.assoc
                ];
                sets
            ],
            cfg,
            stats: CacheStats::default(),
            mshrs: Vec::new(),
            mshr_events: EventCalendar::new(),
            index_key: 0,
            wb_entries: Vec::new(),
            wb_events: EventCalendar::new(),
            use_clock: 0,
        })
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// This cache's statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line as u64 - 1)
    }

    fn set_index(&self, addr: u64) -> usize {
        let line = addr / self.cfg.line as u64;
        if self.index_key == 0 {
            (line % self.sets.len() as u64) as usize
        } else {
            // Keyed hash mixing ALL line-address bits (a plain XOR would
            // only permute set labels and leave congruence classes — and
            // therefore eviction sets — intact).
            let mixed = (line ^ self.index_key).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((mixed >> 32) % self.sets.len() as u64) as usize
        }
    }

    /// Sets the CEASER-style index randomization key and flushes all lines
    /// (remapping invalidates every existing placement). The mitigation
    /// §IV-G1 proposes triggering on a suspected cache attack.
    pub fn set_index_key(&mut self, key: u64) {
        self.index_key = key;
        for set in &mut self.sets {
            for line in set.iter_mut() {
                line.valid = false;
            }
        }
        self.mshrs.clear();
        self.mshr_events.clear();
    }

    /// Whether the line containing `addr` is resident, and in which state.
    pub fn probe(&self, addr: u64) -> Option<LineState> {
        let tag = self.line_addr(addr);
        self.sets[self.set_index(addr)]
            .iter()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| l.state)
    }

    fn retire_mshrs(&mut self, now: u64) {
        self.mshr_events.pop_due(now);
        self.mshrs.retain(|&(_, ready, _)| ready > now);
        self.wb_events.pop_due(now);
        self.wb_entries.retain(|&ready| ready > now);
    }

    /// Performs a timing access for `cmd` at cycle `now`.
    ///
    /// On a hit the line's LRU position refreshes and a write dirties it.
    /// On a miss the caller is responsible for the downstream access and a
    /// subsequent [`Cache::fill`] + [`Cache::complete_miss`].
    pub fn access(&mut self, cmd: MemCmd, addr: u64, now: u64) -> AccessResult {
        use uarch_stats::StatKey;
        self.retire_mshrs(now);
        self.use_clock += 1;
        let i = cmd.index();
        self.stats.cmd.accesses[i] += 1;
        self.stats.agg.overall_accesses.inc();
        let demand = matches!(
            cmd,
            MemCmd::ReadReq | MemCmd::WriteReq | MemCmd::ReadCleanReq
        );
        if demand {
            self.stats.agg.demand_accesses.inc();
        }

        let write = matches!(cmd, MemCmd::WriteReq | MemCmd::ReadExReq);
        let tag = self.line_addr(addr);
        let set = self.set_index(addr);
        let valid_ways = self.sets[set].iter().filter(|l| l.valid).count();
        self.stats.set_occupancy.0.record(valid_ways as f64);
        let clock = self.use_clock;
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = clock;
            if write {
                line.state = LineState::Dirty;
            }
            self.stats.cmd.hits[i] += 1;
            self.stats.cmd.hit_latency[i] += self.cfg.tag_latency + self.cfg.data_latency;
            self.stats.agg.overall_hits.inc();
            if demand {
                self.stats.agg.demand_hits.inc();
            }
            return AccessResult {
                hit: true,
                latency: self.cfg.tag_latency + self.cfg.data_latency,
                coalesced_ready_at: None,
            };
        }

        // Miss path.
        self.stats.cmd.misses[i] += 1;
        self.stats.agg.overall_misses.inc();
        if demand {
            self.stats.agg.demand_misses.inc();
        }

        // MSHR bookkeeping.
        let mut latency = self.cfg.tag_latency;
        if let Some(entry) = self.mshrs.iter_mut().find(|(a, _, _)| *a == tag) {
            // Coalesce onto the outstanding miss.
            if entry.2 >= self.cfg.tgts_per_mshr {
                self.stats.agg.blocked_no_targets.inc();
                self.stats
                    .agg
                    .blocked_cycles_no_targets
                    .add(entry.1.saturating_sub(now));
            } else {
                entry.2 += 1;
            }
            self.stats.cmd.mshr_hits[i] += 1;
            let ready = entry.1;
            return AccessResult {
                hit: false,
                latency,
                coalesced_ready_at: Some(ready),
            };
        }
        self.stats.cmd.mshr_misses[i] += 1;
        if self.mshrs.len() >= self.cfg.mshrs {
            // Block until the earliest outstanding miss completes. The
            // calendar's front IS that minimum — no scan.
            let earliest = self.mshr_events.peek().map_or(now, |(r, _)| r);
            let wait = earliest.saturating_sub(now);
            self.stats.agg.blocked_no_mshrs.inc();
            self.stats.agg.blocked_cycles_no_mshrs.add(wait);
            latency += wait;
            self.mshr_events.pop_due(earliest);
            self.mshrs.retain(|&(_, r, _)| r > earliest);
        }
        AccessResult {
            hit: false,
            latency,
            coalesced_ready_at: None,
        }
    }

    /// Registers the downstream completion of a miss started at `now` with
    /// total `miss_latency` cycles (for MSHR occupancy and latency stats).
    pub fn complete_miss(&mut self, cmd: MemCmd, addr: u64, now: u64, miss_latency: u64) {
        use uarch_stats::StatKey;
        let i = cmd.index();
        self.stats.cmd.miss_latency[i] += miss_latency;
        self.stats.cmd.mshr_miss_latency[i] += miss_latency.saturating_sub(self.cfg.tag_latency);
        self.stats.miss_latency_dist.0.record(miss_latency as f64);
        let tag = self.line_addr(addr);
        self.mshrs.push((tag, now + miss_latency, 1));
        self.mshr_events.schedule(now + miss_latency, tag);
    }

    /// Installs the line containing `addr`, returning the victim's eviction
    /// packet if one had to be replaced.
    ///
    /// `exclusive` marks lines filled for ownership (write misses);
    /// `dirty` installs the line already modified (writebacks arriving from
    /// an upper level).
    pub fn fill(&mut self, addr: u64, exclusive: bool, dirty: bool) -> Option<Eviction> {
        let tag = self.line_addr(addr);
        let set = self.set_index(addr);
        self.use_clock += 1;
        let clock = self.use_clock;

        let state = if dirty {
            LineState::Dirty
        } else if exclusive {
            LineState::Exclusive
        } else {
            LineState::Shared
        };

        // Already resident (e.g. a writeback from above hitting in L2).
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = clock;
            if dirty {
                line.state = LineState::Dirty;
            }
            return None;
        }

        // Invalid way available?
        if let Some(line) = self.sets[set].iter_mut().find(|l| !l.valid) {
            *line = Line {
                tag,
                state,
                last_use: clock,
                valid: true,
            };
            self.stats.agg.tags_in_use.inc();
            return None;
        }

        // Evict LRU.
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|l| l.last_use)
            .expect("assoc > 0");
        let ev_addr = victim.tag;
        let ev_state = victim.state;
        *victim = Line {
            tag,
            state,
            last_use: clock,
            valid: true,
        };
        self.stats.agg.replacements.inc();

        let cmd = match ev_state {
            LineState::Dirty => {
                self.stats.agg.writebacks.inc();
                MemCmd::WritebackDirty
            }
            LineState::Exclusive if self.cfg.writeback_clean => MemCmd::WritebackClean,
            _ => MemCmd::CleanEvict,
        };
        Some(Eviction { addr: ev_addr, cmd })
    }

    /// Reserves a write buffer entry for an eviction at `now`; returns the
    /// extra delay if buffers were full.
    ///
    /// Never panics: when the buffers are full the earliest drain comes
    /// from the calendar front, and `write_buffers >= 1` (enforced by
    /// [`Cache::try_new`]) guarantees the full path has an entry to
    /// drain — a `None` peek falls back to zero extra delay.
    pub fn reserve_write_buffer(&mut self, now: u64, occupancy: u64) -> u64 {
        self.wb_events.pop_due(now);
        self.wb_entries.retain(|&r| r > now);
        let mut delay = 0;
        if self.wb_entries.len() >= self.cfg.write_buffers {
            let earliest = self.wb_events.peek().map_or(now, |(r, _)| r);
            delay = earliest.saturating_sub(now);
            self.stats.agg.wb_full_events.inc();
            self.wb_events.pop_due(earliest);
            self.wb_entries.retain(|&r| r > earliest);
        }
        self.wb_entries.push(now + delay + occupancy);
        self.wb_events.schedule(now + delay + occupancy, 0);
        delay
    }

    /// Invalidates the line containing `addr` (flush), returning a
    /// writeback eviction if it was dirty. Outstanding MSHR entries for the
    /// line are cancelled: a later access must be a fresh miss, not a
    /// coalescing onto a fill the flush already superseded.
    pub fn invalidate(&mut self, addr: u64) -> Option<Eviction> {
        let tag = self.line_addr(addr);
        let set = self.set_index(addr);
        for &(a, ready, _) in &self.mshrs {
            if a == tag {
                self.mshr_events.cancel(ready, tag);
            }
        }
        self.mshrs.retain(|&(a, _, _)| a != tag);
        let line = self.sets[set]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)?;
        line.valid = false;
        self.stats.agg.flush_invalidations.inc();
        self.stats.agg.flush_hits.inc();
        if line.state == LineState::Dirty {
            self.stats.agg.writebacks.inc();
            Some(Eviction {
                addr: tag,
                cmd: MemCmd::WritebackDirty,
            })
        } else {
            Some(Eviction {
                addr: tag,
                cmd: MemCmd::CleanEvict,
            })
        }
    }

    /// Number of outstanding MSHR entries (for tests and blocked modeling).
    pub fn outstanding_misses(&self) -> usize {
        self.mshrs.len()
    }

    /// The completion cycle of the earliest outstanding miss, if any —
    /// an O(1) calendar peek, the query tick-skipping asks to jump the
    /// clock straight to the next memory event.
    pub fn next_miss_completion(&mut self) -> Option<u64> {
        self.mshr_events.peek().map(|(ready, _)| ready)
    }
}

impl StatGroup for Cache {
    fn visit(&self, prefix: &str, v: &mut dyn StatVisitor) {
        self.stats.visit(prefix, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256B
        Cache::new(CacheConfig {
            size: 256,
            assoc: 2,
            line: 64,
            tag_latency: 1,
            data_latency: 1,
            response_latency: 1,
            mshrs: 2,
            tgts_per_mshr: 2,
            write_buffers: 1,
            writeback_clean: false,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        let r = c.access(MemCmd::ReadReq, 0x100, 0);
        assert!(!r.hit);
        c.complete_miss(MemCmd::ReadReq, 0x100, 0, 50);
        c.fill(0x100, false, false);
        let r2 = c.access(MemCmd::ReadReq, 0x120, 100); // same 64B line
        assert!(r2.hit);
        assert_eq!(c.stats().cmd.hits(MemCmd::ReadReq), 1);
        assert_eq!(c.stats().cmd.misses(MemCmd::ReadReq), 1);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds lines 0x000 and 0x080 (two ways). Touch 0x000 last.
        c.fill(0x000, false, false);
        c.fill(0x080, false, false);
        c.access(MemCmd::ReadReq, 0x000, 10);
        let ev = c.fill(0x100, false, false).expect("conflict evicts");
        assert_eq!(ev.addr, 0x080);
        assert_eq!(ev.cmd, MemCmd::CleanEvict);
    }

    #[test]
    fn dirty_eviction_is_writeback_dirty() {
        let mut c = tiny();
        c.fill(0x000, true, false);
        c.access(MemCmd::WriteReq, 0x000, 0); // dirty it
        c.fill(0x080, false, false);
        let ev = c.fill(0x100, false, false).expect("evicts");
        assert_eq!(ev.cmd, MemCmd::WritebackDirty);
        assert_eq!(c.stats().agg.writebacks.value(), 1);
    }

    #[test]
    fn writeback_clean_mode_emits_writeback_clean() {
        let mut cfg = CacheConfig::l1i();
        cfg.size = 256;
        cfg.assoc = 2;
        let mut c = Cache::new(cfg);
        c.fill(0x000, true, false); // exclusive, never written
        c.fill(0x080, false, false);
        let ev = c.fill(0x100, false, false).expect("evicts");
        assert_eq!(ev.cmd, MemCmd::WritebackClean);
    }

    #[test]
    fn flush_invalidates_and_reports_dirty() {
        let mut c = tiny();
        c.fill(0x000, true, false);
        c.access(MemCmd::WriteReq, 0x000, 0);
        let ev = c.invalidate(0x000).expect("was resident");
        assert_eq!(ev.cmd, MemCmd::WritebackDirty);
        assert_eq!(c.probe(0x000), None);
        assert!(c.invalidate(0x000).is_none());
    }

    #[test]
    fn coalesced_miss_counts_mshr_hit() {
        let mut c = tiny();
        let r1 = c.access(MemCmd::ReadReq, 0x100, 0);
        assert!(!r1.hit);
        c.complete_miss(MemCmd::ReadReq, 0x100, 0, 80);
        let r2 = c.access(MemCmd::ReadReq, 0x110, 5); // same line, still in flight
        assert_eq!(r2.coalesced_ready_at, Some(80));
        assert_eq!(c.stats().cmd.mshr_hits[0], 1);
    }

    #[test]
    fn mshr_exhaustion_blocks() {
        let mut c = tiny();
        for (i, addr) in [0x000u64, 0x040].iter().enumerate() {
            let r = c.access(MemCmd::ReadReq, *addr, i as u64);
            assert!(!r.hit);
            c.complete_miss(MemCmd::ReadReq, *addr, i as u64, 100);
        }
        // Third distinct miss with only 2 MSHRs → blocked.
        let r = c.access(MemCmd::ReadReq, 0x200, 2);
        assert!(!r.hit);
        assert_eq!(c.stats().agg.blocked_no_mshrs.value(), 1);
        assert!(r.latency > c.config().tag_latency);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        c.fill(0x000, false, false);
        c.fill(0x080, false, false);
        assert_eq!(c.probe(0x000), Some(LineState::Shared));
        // 0x000 was filled first and probe must not refresh it.
        let ev = c.fill(0x100, false, false).expect("evicts");
        assert_eq!(ev.addr, 0x000);
    }

    #[test]
    fn write_buffer_full_adds_delay() {
        let mut c = tiny();
        let d1 = c.reserve_write_buffer(0, 50);
        assert_eq!(d1, 0);
        let d2 = c.reserve_write_buffer(10, 50);
        assert!(d2 > 0, "single write buffer forces a wait");
        assert_eq!(c.stats().agg.wb_full_events.value(), 1);
    }

    #[test]
    fn try_new_rejects_degenerate_geometry() {
        let mut cfg = CacheConfig::l1d();
        cfg.write_buffers = 0;
        assert!(matches!(
            Cache::try_new(cfg),
            Err(MemError::InvalidGeometry {
                param: "write_buffers",
                ..
            })
        ));
        let mut cfg = CacheConfig::l1d();
        cfg.mshrs = 0;
        assert!(Cache::try_new(cfg).is_err());
        let mut cfg = CacheConfig::l1d();
        cfg.line = 48;
        assert!(Cache::try_new(cfg).is_err());
        assert!(Cache::try_new(CacheConfig::l1d()).is_ok());
    }

    #[test]
    fn calendar_tracks_earliest_miss_completion() {
        let mut c = tiny();
        assert_eq!(c.next_miss_completion(), None);
        c.access(MemCmd::ReadReq, 0x000, 0);
        c.complete_miss(MemCmd::ReadReq, 0x000, 0, 100);
        c.access(MemCmd::ReadReq, 0x040, 0);
        c.complete_miss(MemCmd::ReadReq, 0x040, 0, 60);
        assert_eq!(c.next_miss_completion(), Some(60));
        // A flush cancels the outstanding fill for its line.
        c.fill(0x040, false, false);
        c.invalidate(0x040);
        assert_eq!(c.next_miss_completion(), Some(100));
        // Retirement pops the calendar along with the MSHR vector.
        c.access(MemCmd::ReadReq, 0x080, 150);
        assert_eq!(c.next_miss_completion(), None);
    }

    #[test]
    fn paper_l2_geometry() {
        let cfg = CacheConfig::l2();
        assert_eq!(cfg.sets(), 4096);
        assert_eq!(cfg.mshrs, 20);
        assert_eq!(cfg.tgts_per_mshr, 12);
    }
}
