//! DRAM controller: queues, row buffers, bus turnaround and the power-state
//! machine.
//!
//! The statistics here carry several of the paper's most discriminative
//! invariant features: `bytesReadWrQ` (reads serviced by the write queue —
//! "most attacks attempt to read data freshly evicted from the caches"),
//! `bytesPerActivate`, `wrPerTurnAround`, and `selfRefreshEnergy`.

use std::collections::VecDeque;

use uarch_stats::{
    stat_group, Average, Counter, Distribution, Scalar, StatGroup, StatItem, StatKey, StatVisitor,
    VectorStat,
};

/// Wrapper giving the queue-length distributions a default bucket layout.
#[derive(Debug, Clone)]
pub struct QueueLenDist(pub Distribution);

impl Default for QueueLenDist {
    fn default() -> Self {
        Self(Distribution::new(0.0, 64.0, 8))
    }
}

impl StatItem for QueueLenDist {
    fn visit_item(&self, prefix: &str, name: &str, v: &mut dyn StatVisitor) {
        self.0.visit_item(prefix, name, v);
    }
}

/// Wrapper giving the read-latency distribution a default bucket layout.
#[derive(Debug, Clone)]
pub struct ReadLatencyDist(pub Distribution);

impl Default for ReadLatencyDist {
    fn default() -> Self {
        Self(Distribution::new(0.0, 120.0, 8))
    }
}

impl StatItem for ReadLatencyDist {
    fn visit_item(&self, prefix: &str, name: &str, v: &mut dyn StatVisitor) {
        self.0.visit_item(prefix, name, v);
    }
}

/// Per-bank activation counters emitted as `perBankActivations::N`.
#[derive(Debug, Clone, Default)]
pub struct PerBankActivations(pub Vec<u64>);

impl StatItem for PerBankActivations {
    fn visit_item(&self, prefix: &str, name: &str, v: &mut dyn StatVisitor) {
        use std::fmt::Write;
        let mut sub = String::with_capacity(name.len() + 8);
        for (i, c) in self.0.iter().enumerate() {
            sub.clear();
            let _ = write!(sub, "{name}::{i}");
            v.scalar(prefix, &sub, *c as f64);
        }
    }
}

/// DRAM power states, mirroring gem5's `PowerState` enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum PowerState {
    Idle,
    Active,
    ActivePowerDown,
    PrechargePowerDown,
    SelfRefresh,
}

impl PowerState {
    /// All power states in stat order.
    pub const ALL: [PowerState; 5] = [
        PowerState::Idle,
        PowerState::Active,
        PowerState::ActivePowerDown,
        PowerState::PrechargePowerDown,
        PowerState::SelfRefresh,
    ];
}

impl StatKey for PowerState {
    const COUNT: usize = 5;

    fn index(self) -> usize {
        PowerState::ALL
            .iter()
            .position(|&s| s == self)
            .expect("state in ALL")
    }

    fn label(i: usize) -> &'static str {
        ["IDLE", "ACT", "ACT_PDN", "PRE_PDN", "SREF"][i]
    }
}

/// Timing and sizing of the DRAM controller.
#[derive(Debug, Clone)]
pub struct DramConfig {
    /// Number of banks.
    pub banks: usize,
    /// Row (page) size in bytes per bank.
    pub row_size: u64,
    /// Activate (row open) latency.
    pub t_rcd: u64,
    /// Column access latency.
    pub t_cas: u64,
    /// Precharge latency.
    pub t_rp: u64,
    /// Data burst latency.
    pub t_burst: u64,
    /// Write queue capacity.
    pub write_queue: usize,
    /// Drain the write queue down to this level when it fills.
    pub wq_drain_to: usize,
    /// Idle cycles after which the device drops into a power-down state.
    pub powerdown_threshold: u64,
    /// Idle cycles after which the device enters self-refresh.
    pub selfrefresh_threshold: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            banks: 8,
            row_size: 2048,
            t_rcd: 14,
            t_cas: 14,
            t_rp: 14,
            t_burst: 4,
            write_queue: 64,
            wq_drain_to: 16,
            powerdown_threshold: 300,
            selfrefresh_threshold: 3000,
        }
    }
}

stat_group! {
    /// DRAM controller statistics (gem5 `mem_ctrls.*`).
    pub struct DramStats {
        /// Read requests received.
        pub read_reqs: Counter => "readReqs",
        /// Write requests received.
        pub write_reqs: Counter => "writeReqs",
        /// Bytes read from the DRAM devices.
        pub bytes_read_dram: Counter => "bytesReadDRAM",
        /// Bytes of read requests serviced directly by the write queue.
        pub bytes_read_wr_q: Counter => "bytesReadWrQ",
        /// Bytes written to DRAM.
        pub bytes_written: Counter => "bytesWritten",
        /// Read row-buffer hits.
        pub read_row_hits: Counter => "readRowHits",
        /// Write row-buffer hits.
        pub write_row_hits: Counter => "writeRowHits",
        /// Row activations.
        pub activations: Counter => "rankTotalActivations",
        /// Bytes accessed per row activation.
        pub bytes_per_activate: Average => "bytesPerActivate",
        /// Writes serviced per write→read bus turnaround.
        pub wr_per_turn_around: Average => "wrPerTurnAround",
        /// Total read-queue latency.
        pub tot_q_lat: Counter => "totQLat",
        /// Write bursts drained.
        pub write_bursts: Counter => "writeBursts",
        /// Read bursts serviced.
        pub read_bursts: Counter => "readBursts",
        /// Activate energy (pJ).
        pub act_energy: Scalar => "actEnergy",
        /// Precharge energy (pJ).
        pub pre_energy: Scalar => "preEnergy",
        /// Read burst energy (pJ).
        pub read_energy: Scalar => "readEnergy",
        /// Write burst energy (pJ).
        pub write_energy: Scalar => "writeEnergy",
        /// Background energy while active (pJ).
        pub act_back_energy: Scalar => "actBackEnergy",
        /// Background energy while precharged (pJ).
        pub pre_back_energy: Scalar => "preBackEnergy",
        /// Energy spent in self-refresh (pJ).
        pub self_refresh_energy: Scalar => "selfRefreshEnergy",
        /// Refresh energy (pJ).
        pub refresh_energy: Scalar => "refreshEnergy",
        /// Total energy (pJ).
        pub total_energy: Scalar => "totalEnergy",
        /// Cycles spent in each power state.
        pub memory_state_time: VectorStat<PowerState> => "memoryStateTime",
        /// Average queueing latency per serviced read.
        pub avg_q_lat: Average => "avgQLat",
        /// Write-queue length sampled at each write arrival.
        pub wr_q_len_pdf: QueueLenDist => "wrQLenPdf",
        /// Write-queue length sampled at each read arrival.
        pub rd_q_len_pdf: QueueLenDist => "rdQLenPdf",
        /// Read service latency distribution.
        pub read_latency_dist: ReadLatencyDist => "readLatencyDist",
        /// Activations per bank.
        pub per_bank_activations: PerBankActivations => "perBankActivations",
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BusDir {
    Reads,
    Writes,
}

/// The DRAM memory controller (gem5 `mem_ctrls`).
///
/// Synchronous model: each request returns its service latency immediately;
/// queue, row-buffer and power bookkeeping happen as side effects.
#[derive(Debug)]
pub struct MemCtrl {
    cfg: DramConfig,
    stats: DramStats,
    open_row: Vec<Option<u64>>,
    bytes_this_row: Vec<u64>,
    write_q: VecDeque<u64>,
    bus_dir: BusDir,
    writes_since_turnaround: u64,
    last_busy: u64,
}

impl MemCtrl {
    /// Creates a controller with the given configuration.
    pub fn new(cfg: DramConfig) -> Self {
        Self {
            open_row: vec![None; cfg.banks],
            bytes_this_row: vec![0; cfg.banks],
            write_q: VecDeque::new(),
            bus_dir: BusDir::Reads,
            writes_since_turnaround: 0,
            last_busy: 0,
            stats: {
                let mut st = DramStats::default();
                st.per_bank_activations.0 = vec![0; cfg.banks];
                st
            },
            cfg,
        }
    }

    /// The controller statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Current write-queue occupancy.
    pub fn write_queue_len(&self) -> usize {
        self.write_q.len()
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let row_bytes = self.cfg.row_size;
        let bank = ((addr / row_bytes) % self.cfg.banks as u64) as usize;
        let row = addr / (row_bytes * self.cfg.banks as u64);
        (bank, row)
    }

    /// Updates power-state accounting for the idle gap before `now`.
    fn account_idle(&mut self, now: u64) {
        let gap = now.saturating_sub(self.last_busy);
        if gap == 0 {
            return;
        }
        if gap > self.cfg.selfrefresh_threshold {
            let pd = self.cfg.powerdown_threshold.min(gap);
            let sr = gap - self.cfg.selfrefresh_threshold;
            let idle = gap - sr - pd.min(gap - sr);
            self.stats.memory_state_time.add(PowerState::Idle, idle);
            self.stats
                .memory_state_time
                .add(PowerState::PrechargePowerDown, pd.min(gap - sr));
            self.stats
                .memory_state_time
                .add(PowerState::SelfRefresh, sr);
            self.stats.self_refresh_energy.add(sr as f64 * 0.4);
            self.stats
                .pre_back_energy
                .add(pd.min(gap - sr) as f64 * 0.8);
            // Entering self-refresh closes all rows.
            for (row, bytes) in self.open_row.iter_mut().zip(&mut self.bytes_this_row) {
                *row = None;
                *bytes = 0;
            }
        } else if gap > self.cfg.powerdown_threshold {
            let pd = gap - self.cfg.powerdown_threshold;
            self.stats.memory_state_time.add(PowerState::Idle, gap - pd);
            self.stats
                .memory_state_time
                .add(PowerState::ActivePowerDown, pd);
            self.stats.act_back_energy.add(pd as f64 * 1.2);
        } else {
            self.stats.memory_state_time.add(PowerState::Idle, gap);
            self.stats.pre_back_energy.add(gap as f64 * 1.0);
        }
    }

    fn row_access(&mut self, addr: u64, bytes: u64) -> (u64, bool) {
        let (bank, row) = self.bank_and_row(addr);
        if self.open_row[bank] == Some(row) {
            self.bytes_this_row[bank] += bytes;
            (self.cfg.t_cas + self.cfg.t_burst, true)
        } else {
            let mut lat = self.cfg.t_rcd + self.cfg.t_cas + self.cfg.t_burst;
            if self.open_row[bank].is_some() {
                lat += self.cfg.t_rp;
                self.stats.pre_energy.add(2.0);
                self.stats
                    .bytes_per_activate
                    .record(self.bytes_this_row[bank] as f64);
            }
            self.open_row[bank] = Some(row);
            self.bytes_this_row[bank] = bytes;
            self.stats.activations.inc();
            self.stats.per_bank_activations.0[bank] += 1;
            self.stats.act_energy.add(6.0);
            (lat, false)
        }
    }

    fn drain_writes(&mut self, now: u64) -> u64 {
        let mut lat = 0;
        if self.bus_dir == BusDir::Reads {
            self.bus_dir = BusDir::Writes;
        }
        while self.write_q.len() > self.cfg.wq_drain_to {
            let addr = self.write_q.pop_front().expect("non-empty");
            let (l, hit) = self.row_access(addr, 64);
            if hit {
                self.stats.write_row_hits.inc();
            }
            lat += l / 2; // write bursts pipeline behind each other
            self.stats.write_bursts.inc();
            self.stats.write_energy.add(4.5);
            self.writes_since_turnaround += 1;
        }
        self.last_busy = now + lat;
        lat
    }

    /// Services a line read at cycle `now`; returns the latency.
    pub fn read(&mut self, addr: u64, bytes: u64, now: u64) -> u64 {
        self.account_idle(now);
        self.stats.read_reqs.inc();
        self.stats.read_bursts.inc();
        self.stats.rd_q_len_pdf.0.record(self.write_q.len() as f64);

        // Serviced by the write queue?
        let line = addr & !63;
        if self.write_q.iter().any(|&w| (w & !63) == line) {
            self.stats.bytes_read_wr_q.add(bytes);
            let lat = self.cfg.t_burst;
            self.last_busy = now + lat;
            self.stats.memory_state_time.add(PowerState::Active, lat);
            return lat;
        }

        // Bus turnaround if we were draining writes.
        if self.bus_dir == BusDir::Writes {
            self.bus_dir = BusDir::Reads;
            self.stats
                .wr_per_turn_around
                .record(self.writes_since_turnaround as f64);
            self.writes_since_turnaround = 0;
        }

        let (lat, hit) = self.row_access(addr, bytes);
        if hit {
            self.stats.read_row_hits.inc();
        }
        self.stats.bytes_read_dram.add(bytes);
        self.stats.read_energy.add(4.0);
        self.stats.tot_q_lat.add(lat);
        self.stats.avg_q_lat.record(lat as f64);
        self.stats.read_latency_dist.0.record(lat as f64);
        self.stats.memory_state_time.add(PowerState::Active, lat);
        self.stats.total_energy.set(self.total_energy_now());
        self.last_busy = now + lat;
        lat
    }

    /// Accepts a line write (writeback) at cycle `now`; returns the latency
    /// charged to the requester (usually just the enqueue cost).
    pub fn write(&mut self, addr: u64, bytes: u64, now: u64) -> u64 {
        self.account_idle(now);
        self.stats.write_reqs.inc();
        self.stats.bytes_written.add(bytes);
        self.stats.wr_q_len_pdf.0.record(self.write_q.len() as f64);
        self.write_q.push_back(addr);
        let mut lat = 1;
        if self.write_q.len() >= self.cfg.write_queue {
            lat += self.drain_writes(now);
        }
        self.stats.memory_state_time.add(PowerState::Active, lat);
        self.stats.total_energy.set(self.total_energy_now());
        self.last_busy = now + lat;
        lat
    }

    fn total_energy_now(&self) -> f64 {
        self.stats.act_energy.value()
            + self.stats.pre_energy.value()
            + self.stats.read_energy.value()
            + self.stats.write_energy.value()
            + self.stats.act_back_energy.value()
            + self.stats.pre_back_energy.value()
            + self.stats.self_refresh_energy.value()
            + self.stats.refresh_energy.value()
    }
}

impl StatGroup for MemCtrl {
    fn visit(&self, prefix: &str, v: &mut dyn StatVisitor) {
        self.stats.visit(prefix, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut m = MemCtrl::new(DramConfig::default());
        let miss = m.read(0x0, 64, 0);
        let hit = m.read(0x40, 64, 100); // same row
        assert!(hit < miss);
        assert_eq!(m.stats().read_row_hits.value(), 1);
    }

    #[test]
    fn read_hitting_write_queue_counts_bytes_read_wr_q() {
        let mut m = MemCtrl::new(DramConfig::default());
        m.write(0x1000, 64, 0);
        let lat = m.read(0x1000, 64, 10);
        assert_eq!(m.stats().bytes_read_wr_q.value(), 64);
        assert_eq!(lat, m.cfg.t_burst);
    }

    #[test]
    fn write_queue_fills_then_drains() {
        let cfg = DramConfig {
            write_queue: 4,
            wq_drain_to: 1,
            ..Default::default()
        };
        let mut m = MemCtrl::new(cfg);
        for i in 0..4 {
            m.write(0x1000 * i, 64, i);
        }
        assert!(m.write_queue_len() <= 1);
        assert!(m.stats().write_bursts.value() >= 3);
    }

    #[test]
    fn turnaround_records_writes_per_switch() {
        let cfg = DramConfig {
            write_queue: 2,
            wq_drain_to: 0,
            ..Default::default()
        };
        let mut m = MemCtrl::new(cfg);
        m.write(0x0, 64, 0);
        m.write(0x4000, 64, 1); // triggers drain → bus to Writes
        m.read(0x8000, 64, 50); // turnaround back to Reads
        assert_eq!(m.stats().wr_per_turn_around.count(), 1);
        assert_eq!(m.stats().wr_per_turn_around.sum(), 2.0);
    }

    #[test]
    fn long_idle_gap_accrues_self_refresh_energy() {
        let mut m = MemCtrl::new(DramConfig::default());
        m.read(0x0, 64, 0);
        m.read(0x40, 64, 100_000); // huge gap
        assert!(m.stats().self_refresh_energy.value() > 0.0);
        assert!(m.stats().memory_state_time.get(PowerState::SelfRefresh) > 0);
    }

    #[test]
    fn self_refresh_closes_rows() {
        let mut m = MemCtrl::new(DramConfig::default());
        let first = m.read(0x0, 64, 0);
        // Without the gap this would be a row hit; after self-refresh the
        // row must be re-activated.
        let after_sr = m.read(0x40, 64, 100_000);
        assert_eq!(first, after_sr);
        assert_eq!(m.stats().read_row_hits.value(), 0);
    }

    #[test]
    fn bytes_per_activate_records_on_row_close() {
        let cfg = DramConfig {
            banks: 1,
            row_size: 128,
            ..Default::default()
        };
        let mut m = MemCtrl::new(cfg);
        m.read(0x00, 64, 0);
        m.read(0x40, 64, 10); // same row: 128 bytes accumulated
        m.read(0x100, 64, 20); // different row → closes previous
        assert_eq!(m.stats().bytes_per_activate.count(), 1);
        assert_eq!(m.stats().bytes_per_activate.sum(), 128.0);
    }
}
