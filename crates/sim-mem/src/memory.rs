//! Flat backing memory.

use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse, zero-initialized flat physical memory.
///
/// Pages materialize on first touch. Values are little-endian.
///
/// # Example
///
/// ```
/// use sim_mem::Memory;
/// let mut m = Memory::new();
/// m.write(0xfff, 8, 0x1122334455667788); // spans a page boundary
/// assert_eq!(m.read(0xfff, 8), 0x1122334455667788);
/// assert_eq!(m.read(0x1000, 1), 0x77);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_byte(&self, addr: u64) -> u8 {
        self.page(addr)
            .map(|p| p[(addr as usize) & (PAGE_SIZE - 1)])
            .unwrap_or(0)
    }

    /// Writes one byte.
    pub fn write_byte(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `size` bytes (1, 2, 4 or 8) little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    pub fn read(&self, addr: u64, size: u64) -> u64 {
        assert!(
            matches!(size, 1 | 2 | 4 | 8),
            "unsupported access size {size}"
        );
        let mut v: u64 = 0;
        for i in 0..size {
            v |= (self.read_byte(addr + i) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `size` bytes (1, 2, 4 or 8) of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    pub fn write(&mut self, addr: u64, size: u64, value: u64) {
        assert!(
            matches!(size, 1 | 2 | 4 | 8),
            "unsupported access size {size}"
        );
        for i in 0..size {
            self.write_byte(addr + i, (value >> (8 * i)) as u8);
        }
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_byte(addr + i as u64, *b);
        }
    }

    /// Number of materialized 4 KiB pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(0xdead_beef, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn little_endian_round_trip() {
        let mut m = Memory::new();
        m.write(0x100, 4, 0xaabbccdd);
        assert_eq!(m.read(0x100, 1), 0xdd);
        assert_eq!(m.read(0x103, 1), 0xaa);
        assert_eq!(m.read(0x100, 4), 0xaabbccdd);
    }

    #[test]
    fn cross_page_write_materializes_both_pages() {
        let mut m = Memory::new();
        m.write(0x1ffc, 8, u64::MAX);
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.read(0x1ffc, 8), u64::MAX);
    }

    #[test]
    fn write_bytes_copies_slice() {
        let mut m = Memory::new();
        m.write_bytes(0x40, &[1, 2, 3]);
        assert_eq!(m.read(0x40, 1), 1);
        assert_eq!(m.read(0x42, 1), 3);
    }

    #[test]
    #[should_panic(expected = "unsupported access size")]
    fn odd_size_panics() {
        Memory::new().read(0, 3);
    }
}
