//! The assembled memory hierarchy: L1I + L1D → tol2bus → L2 → membus →
//! DRAM controller, with a flat functional backing store.
//!
//! The L1s and the functional memory are private to a core; everything
//! below lives in an [`Uncore`] reached through an [`UncoreHandle`]. A
//! standalone core owns its uncore (the historical single-core layout,
//! no locking); a multi-core machine hands every core the same shared
//! uncore so L2/bus/DRAM timing state is genuinely contended.

use std::sync::{Arc, Mutex};

use uarch_stats::{StatGroup, StatVisitor};

use crate::bus::Bus;
use crate::cache::{Cache, CacheConfig};
use crate::cmd::MemCmd;
use crate::dram::{DramConfig, MemCtrl};
use crate::error::MemError;
use crate::memory::Memory;
use crate::uncore::{Uncore, UncoreHandle};

const LINE: u64 = 64;

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Shared L2.
    pub l2: CacheConfig,
    /// DRAM controller.
    pub dram: DramConfig,
    /// L1↔L2 crossbar transfer latency.
    pub tol2bus_latency: u64,
    /// L2↔memory crossbar transfer latency.
    pub membus_latency: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            l1i: CacheConfig::l1i(),
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            dram: DramConfig::default(),
            tol2bus_latency: 1,
            membus_latency: 2,
        }
    }
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit in the first-level cache.
    L1Hit,
    /// Missed L1, hit L2.
    L2Hit,
    /// Missed both, went to memory.
    MemAccess,
    /// Coalesced onto an already-outstanding miss.
    MshrCoalesced,
}

/// Result of a data load.
#[derive(Debug, Clone, Copy)]
pub struct LoadResult {
    /// Total latency in cycles.
    pub latency: u64,
    /// The loaded value.
    pub value: u64,
    /// Where the access was satisfied.
    pub outcome: AccessOutcome,
}

/// The full memory system below the core: private L1s + functional memory,
/// plus a handle to the (possibly shared) uncore.
#[derive(Debug)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    memory: Memory,
    core_id: usize,
    uncore: UncoreHandle,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate cache geometry; prefer
    /// [`MemoryHierarchy::try_new`] for a typed error.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the hierarchy, rejecting degenerate cache geometry with a
    /// typed [`MemError`] instead of panicking. The uncore is owned: the
    /// standalone single-core layout.
    pub fn try_new(cfg: HierarchyConfig) -> Result<Self, MemError> {
        let uncore = Uncore::try_new(&cfg, 1)?;
        Ok(Self {
            l1i: Cache::try_new(cfg.l1i)?,
            l1d: Cache::try_new(cfg.l1d)?,
            memory: Memory::new(),
            core_id: 0,
            uncore: UncoreHandle::Owned(Box::new(uncore)),
        })
    }

    /// Builds one core's private slice of a multi-core hierarchy: its own
    /// L1s and functional memory, wired to the machine's shared uncore.
    pub fn try_shared(
        l1i: CacheConfig,
        l1d: CacheConfig,
        uncore: Arc<Mutex<Uncore>>,
        core_id: usize,
    ) -> Result<Self, MemError> {
        Ok(Self {
            l1i: Cache::try_new(l1i)?,
            l1d: Cache::try_new(l1d)?,
            memory: Memory::new(),
            core_id,
            uncore: UncoreHandle::Shared(uncore),
        })
    }

    /// The functional backing memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable access to the functional backing memory (used to install
    /// program data segments and by the core's commit path).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// The L1 data cache (for probes in tests and attack verification).
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The core this hierarchy belongs to (0 for standalone cores).
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// Whether this hierarchy owns its uncore (standalone single core)
    /// rather than sharing a machine-level one.
    pub fn owns_uncore(&self) -> bool {
        self.uncore.is_owned()
    }

    /// Runs `f` with shared access to the uncore (owned or shared).
    pub fn with_uncore<R>(&self, f: impl FnOnce(&Uncore) -> R) -> R {
        self.uncore.with_ref(f)
    }

    /// Runs `f` with mutable access to the uncore (owned or shared).
    pub fn with_uncore_mut<R>(&mut self, f: impl FnOnce(&mut Uncore) -> R) -> R {
        self.uncore.with(f)
    }

    /// The shared L2.
    ///
    /// # Panics
    ///
    /// Panics when the uncore is shared with other cores (a borrow cannot
    /// escape the lock); use [`MemoryHierarchy::with_uncore`] there.
    pub fn l2(&self) -> &Cache {
        match &self.uncore {
            UncoreHandle::Owned(u) => u.l2(),
            UncoreHandle::Shared(_) => {
                panic!("l2(): uncore is shared; probe it via with_uncore()")
            }
        }
    }

    /// The DRAM controller.
    ///
    /// # Panics
    ///
    /// Panics when the uncore is shared (see [`MemoryHierarchy::l2`]).
    pub fn mem_ctrl(&self) -> &MemCtrl {
        match &self.uncore {
            UncoreHandle::Owned(u) => u.mem_ctrl(),
            UncoreHandle::Shared(_) => {
                panic!("mem_ctrl(): uncore is shared; probe it via with_uncore()")
            }
        }
    }

    /// The L1↔L2 crossbar.
    ///
    /// # Panics
    ///
    /// Panics when the uncore is shared (see [`MemoryHierarchy::l2`]).
    pub fn tol2bus(&self) -> &Bus {
        match &self.uncore {
            UncoreHandle::Owned(u) => u.tol2bus(),
            UncoreHandle::Shared(_) => {
                panic!("tol2bus(): uncore is shared; probe it via with_uncore()")
            }
        }
    }

    /// The L2↔memory crossbar.
    ///
    /// # Panics
    ///
    /// Panics when the uncore is shared (see [`MemoryHierarchy::l2`]).
    pub fn membus(&self) -> &Bus {
        match &self.uncore {
            UncoreHandle::Owned(u) => u.membus(),
            UncoreHandle::Shared(_) => {
                panic!("membus(): uncore is shared; probe it via with_uncore()")
            }
        }
    }

    /// Performs a timed data load: returns latency, value and where it hit.
    pub fn load(&mut self, addr: u64, size: u64, now: u64) -> LoadResult {
        let value = self.memory.read(addr, size);
        let res = self.l1d.access(MemCmd::ReadReq, addr, now);
        if res.hit {
            return LoadResult {
                latency: res.latency,
                value,
                outcome: AccessOutcome::L1Hit,
            };
        }
        if let Some(ready) = res.coalesced_ready_at {
            return LoadResult {
                latency: res.latency.max(ready.saturating_sub(now)),
                value,
                outcome: AccessOutcome::MshrCoalesced,
            };
        }
        let core_id = self.core_id;
        let (below, outcome) = self.uncore.with(|u| {
            u.below_l1(
                MemCmd::ReadSharedReq,
                addr,
                now + res.latency,
                false,
                core_id,
            )
        });
        let total = res.latency + below;
        self.l1d.complete_miss(MemCmd::ReadReq, addr, now, total);
        if let Some(ev) = self.l1d.fill(addr, false, false) {
            let wb_delay = self.l1d.reserve_write_buffer(now + total, 20);
            self.uncore
                .with(|u| u.l1_eviction(ev, now + total + wb_delay, core_id));
        }
        LoadResult {
            latency: total,
            value,
            outcome,
        }
    }

    /// Performs a timed data store (write-allocate, write-back). The value
    /// is written through to the functional backing store.
    pub fn store(&mut self, addr: u64, size: u64, value: u64, now: u64) -> u64 {
        self.memory.write(addr, size, value);
        let res = self.l1d.access(MemCmd::WriteReq, addr, now);
        if res.hit {
            return res.latency;
        }
        if let Some(ready) = res.coalesced_ready_at {
            return res.latency.max(ready.saturating_sub(now));
        }
        let core_id = self.core_id;
        let (below, _) = self
            .uncore
            .with(|u| u.below_l1(MemCmd::ReadExReq, addr, now + res.latency, true, core_id));
        let total = res.latency + below;
        self.l1d.complete_miss(MemCmd::WriteReq, addr, now, total);
        if let Some(ev) = self.l1d.fill(addr, true, true) {
            let wb_delay = self.l1d.reserve_write_buffer(now + total, 20);
            self.uncore
                .with(|u| u.l1_eviction(ev, now + total + wb_delay, core_id));
        }
        total
    }

    /// Performs a timed instruction fetch of the line containing `addr`.
    pub fn fetch(&mut self, addr: u64, now: u64) -> (u64, AccessOutcome) {
        let res = self.l1i.access(MemCmd::ReadCleanReq, addr, now);
        if res.hit {
            return (res.latency, AccessOutcome::L1Hit);
        }
        if let Some(ready) = res.coalesced_ready_at {
            return (
                res.latency.max(ready.saturating_sub(now)),
                AccessOutcome::MshrCoalesced,
            );
        }
        let core_id = self.core_id;
        let (below, outcome) = self.uncore.with(|u| {
            u.below_l1(
                MemCmd::ReadCleanReq,
                addr,
                now + res.latency,
                false,
                core_id,
            )
        });
        let total = res.latency + below;
        self.l1i
            .complete_miss(MemCmd::ReadCleanReq, addr, now, total);
        if let Some(ev) = self.l1i.fill(addr, true, false) {
            self.uncore
                .with(|u| u.l1_eviction(ev, now + total, core_id));
        }
        (total, outcome)
    }

    /// Flushes the line containing `addr` from the entire hierarchy
    /// (`clflush`). The latency depends on where (and how dirty) the line
    /// was — the timing signal Flush+Flush reads.
    pub fn flush_line(&mut self, addr: u64, now: u64) -> u64 {
        let Self {
            l1i,
            l1d,
            core_id,
            uncore,
            ..
        } = self;
        let core_id = *core_id;
        uncore.with(|u| {
            let mut lat = 10; // base cost of the flush micro-op
            let in_l1 = l1d.probe(addr).is_some() || l1i.probe(addr).is_some();
            let in_l2 = u.l2.probe(addr).is_some();

            if in_l1 || in_l2 {
                u.tol2bus.send(MemCmd::FlushReq, 0, now);
            }
            if let Some(ev) = l1d.invalidate(addr) {
                lat += 15;
                if ev.cmd == MemCmd::WritebackDirty {
                    u.tol2bus.send(MemCmd::WritebackDirty, LINE, now + lat);
                    u.membus.send(MemCmd::WritebackDirty, LINE, now + lat);
                    lat += 10 + u.mem_ctrl.write(ev.addr, LINE, now + lat);
                }
            }
            if l1i.invalidate(addr).is_some() {
                lat += 10;
            }
            if in_l2 {
                u.membus.send(MemCmd::FlushReq, 0, now + lat);
            }
            if let Some(ev) = u.l2.invalidate(addr) {
                lat += 20;
                if ev.cmd == MemCmd::WritebackDirty {
                    u.membus.send(MemCmd::WritebackDirty, LINE, now + lat);
                    lat += 10 + u.mem_ctrl.write(ev.addr, LINE, now + lat);
                }
                u.l2_eviction_snoop(ev.addr, core_id);
            }
            lat
        })
    }

    /// Applies a snoop back-invalidation to this core's private L1s (a
    /// line another core evicted from the shared L2 or requested
    /// exclusively). Returns how many L1 copies were dropped. Pure state
    /// removal: the shared-bus traffic was already accounted by the
    /// originating core's request.
    pub fn snoop_invalidate(&mut self, line_addr: u64) -> u64 {
        let mut dropped = 0;
        if self.l1d.invalidate(line_addr).is_some() {
            dropped += 1;
        }
        if self.l1i.invalidate(line_addr).is_some() {
            dropped += 1;
        }
        dropped
    }

    /// Whether the line containing `addr` is resident in the L1 data cache.
    pub fn cached_in_l1d(&self, addr: u64) -> bool {
        self.l1d.probe(addr).is_some()
    }

    /// Applies CEASER-style index randomization to the data-side caches
    /// (the §IV-G1 mitigation a suspected cache attack triggers). Resident
    /// lines are invalidated by the remap.
    pub fn randomize_indexing(&mut self, key: u64) {
        self.l1d.set_index_key(key);
        self.uncore.with(|u| u.l2.set_index_key(key.rotate_left(7)));
    }
}

impl StatGroup for MemoryHierarchy {
    fn visit(&self, prefix: &str, v: &mut dyn StatVisitor) {
        let p = |s: &str| {
            if prefix.is_empty() {
                s.to_string()
            } else {
                format!("{prefix}.{s}")
            }
        };
        self.l1i.visit(&p("icache"), v);
        self.l1d.visit(&p("dcache"), v);
        // A shared uncore is published once by the machine, not once per
        // core; an owned uncore keeps the historical flat layout.
        if let UncoreHandle::Owned(u) = &self.uncore {
            u.visit_stats(prefix, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_stats::Snapshot;

    #[test]
    fn load_miss_fills_all_levels() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default());
        h.memory_mut().write(0x4000, 8, 77);
        let r = h.load(0x4000, 8, 0);
        assert_eq!(r.outcome, AccessOutcome::MemAccess);
        assert_eq!(r.value, 77);
        assert!(h.cached_in_l1d(0x4000));
        assert!(h.l2().probe(0x4000).is_some());
        let r2 = h.load(0x4000, 8, r.latency + 1);
        assert_eq!(r2.outcome, AccessOutcome::L1Hit);
        assert!(r2.latency < r.latency);
    }

    #[test]
    fn flush_removes_line_everywhere_and_costs_more_when_resident() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default());
        h.load(0x4000, 8, 0);
        let lat_present = h.flush_line(0x4000, 100);
        assert!(!h.cached_in_l1d(0x4000));
        assert!(h.l2().probe(0x4000).is_none());
        let lat_absent = h.flush_line(0x4000, 200);
        assert!(
            lat_present > lat_absent,
            "flush of resident line ({lat_present}) must exceed absent ({lat_absent})"
        );
    }

    #[test]
    fn store_dirties_line_and_flush_writes_back() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default());
        h.store(0x9000, 8, 42, 0);
        let lat_dirty = h.flush_line(0x9000, 100);
        h.load(0x9000, 8, 200);
        let lat_clean = h.flush_line(0x9000, 500);
        assert!(lat_dirty > lat_clean, "dirty flush writes back");
        assert_eq!(h.memory().read(0x9000, 8), 42);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default());
        // L1D is 64KB 8-way = 128 sets. Fill 9 lines mapping to set 0 to
        // force one eviction; the victim should still hit in L2.
        let stride = 128 * 64; // one L1D set apart
        for i in 0..9u64 {
            h.load(0x10_0000 + i * stride, 8, i * 1000);
        }
        let r = h.load(0x10_0000, 8, 100_000);
        assert_eq!(r.outcome, AccessOutcome::L2Hit);
    }

    #[test]
    fn prime_like_sweep_emits_clean_evictions_on_tol2bus() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default());
        let stride = 128 * 64;
        for i in 0..64u64 {
            h.load(0x20_0000 + i * stride, 8, i * 500);
        }
        assert!(
            h.tol2bus().stats().trans_dist.get(MemCmd::CleanEvict) > 0,
            "L1 conflict evictions of clean lines must show up on the bus"
        );
    }

    #[test]
    fn fetch_uses_icache() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default());
        let (miss_lat, out) = h.fetch(0x100, 0);
        assert_eq!(out, AccessOutcome::MemAccess);
        let (hit_lat, out2) = h.fetch(0x104, miss_lat);
        assert_eq!(out2, AccessOutcome::L1Hit);
        assert!(hit_lat < miss_lat);
    }

    #[test]
    fn stats_tree_has_expected_names() {
        let h = MemoryHierarchy::new(HierarchyConfig::default());
        let snap = Snapshot::of(&h, "system");
        assert!(snap.get("system.dcache.ReadReq_misses").is_some());
        assert!(snap
            .get("system.l2.ReadSharedReq_mshr_miss_latency")
            .is_some());
        assert!(snap.get("system.tol2bus.trans_dist::CleanEvict").is_some());
        assert!(snap.get("system.mem_ctrls.selfRefreshEnergy").is_some());
        assert!(snap.get("system.mem_ctrls.bytesReadWrQ").is_some());
    }

    #[test]
    fn single_core_uncore_records_no_snoops_or_arb_stats() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default());
        h.store(0x4000, 8, 1, 0);
        h.load(0x8000, 8, 100);
        h.flush_line(0x4000, 200);
        assert_eq!(
            h.with_uncore_mut(|u| u.take_pending_invalidations()).len(),
            0,
            "single-core uncore must not queue snoops"
        );
        assert_eq!(h.tol2bus().stats().snoop_filter.tot_snoops.value(), 0);
        let snap = Snapshot::of(&h, "");
        assert!(
            snap.get("tol2bus.arbGrants::core0").is_none(),
            "single-core schema must not grow arbiter stats"
        );
    }

    #[test]
    fn shared_uncore_queues_back_invalidations() {
        let cfg = HierarchyConfig::default();
        let uncore = Arc::new(Mutex::new(Uncore::try_new(&cfg, 2).expect("uncore builds")));
        let mut a =
            MemoryHierarchy::try_shared(cfg.l1i.clone(), cfg.l1d.clone(), uncore.clone(), 0)
                .expect("core0 hierarchy");
        let mut b = MemoryHierarchy::try_shared(cfg.l1i, cfg.l1d, uncore, 1).expect("core1");

        // Core 1 caches a line; core 0 stores to the same line address —
        // the exclusive request queues a snoop against core 1's copy.
        b.load(0x4000, 8, 0);
        assert!(b.cached_in_l1d(0x4000));
        a.store(0x4000, 8, 7, 100);
        let pending = a.with_uncore_mut(|u| u.take_pending_invalidations());
        assert!(
            pending
                .iter()
                .any(|p| p.line_addr == 0x4000 && p.src_core == 0),
            "exclusive store must queue a snoop: {pending:?}"
        );
        assert_eq!(b.snoop_invalidate(0x4000), 1);
        assert!(!b.cached_in_l1d(0x4000));
    }
}
