//! The assembled memory hierarchy: L1I + L1D → tol2bus → L2 → membus →
//! DRAM controller, with a flat functional backing store.

use uarch_stats::{StatGroup, StatVisitor};

use crate::bus::Bus;
use crate::cache::{Cache, CacheConfig};
use crate::cmd::MemCmd;
use crate::dram::{DramConfig, MemCtrl};
use crate::error::MemError;
use crate::memory::Memory;

const LINE: u64 = 64;

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Shared L2.
    pub l2: CacheConfig,
    /// DRAM controller.
    pub dram: DramConfig,
    /// L1↔L2 crossbar transfer latency.
    pub tol2bus_latency: u64,
    /// L2↔memory crossbar transfer latency.
    pub membus_latency: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            l1i: CacheConfig::l1i(),
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            dram: DramConfig::default(),
            tol2bus_latency: 1,
            membus_latency: 2,
        }
    }
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit in the first-level cache.
    L1Hit,
    /// Missed L1, hit L2.
    L2Hit,
    /// Missed both, went to memory.
    MemAccess,
    /// Coalesced onto an already-outstanding miss.
    MshrCoalesced,
}

/// Result of a data load.
#[derive(Debug, Clone, Copy)]
pub struct LoadResult {
    /// Total latency in cycles.
    pub latency: u64,
    /// The loaded value.
    pub value: u64,
    /// Where the access was satisfied.
    pub outcome: AccessOutcome,
}

/// The full memory system below the core.
#[derive(Debug)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    tol2bus: Bus,
    membus: Bus,
    mem_ctrl: MemCtrl,
    memory: Memory,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate cache geometry; prefer
    /// [`MemoryHierarchy::try_new`] for a typed error.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the hierarchy, rejecting degenerate cache geometry with a
    /// typed [`MemError`] instead of panicking.
    pub fn try_new(cfg: HierarchyConfig) -> Result<Self, MemError> {
        Ok(Self {
            l1i: Cache::try_new(cfg.l1i)?,
            l1d: Cache::try_new(cfg.l1d)?,
            l2: Cache::try_new(cfg.l2)?,
            tol2bus: Bus::new(cfg.tol2bus_latency),
            membus: Bus::new(cfg.membus_latency),
            mem_ctrl: MemCtrl::new(cfg.dram),
            memory: Memory::new(),
        })
    }

    /// The functional backing memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable access to the functional backing memory (used to install
    /// program data segments and by the core's commit path).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// The L1 data cache (for probes in tests and attack verification).
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The shared L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The DRAM controller.
    pub fn mem_ctrl(&self) -> &MemCtrl {
        &self.mem_ctrl
    }

    /// The L1↔L2 crossbar.
    pub fn tol2bus(&self) -> &Bus {
        &self.tol2bus
    }

    /// The L2↔memory crossbar.
    pub fn membus(&self) -> &Bus {
        &self.membus
    }

    /// Handles an L1 eviction packet: puts it on the L1↔L2 bus and applies
    /// it to the L2.
    fn l1_eviction(&mut self, ev: crate::cache::Eviction, now: u64) {
        let bytes = if ev.cmd == MemCmd::CleanEvict {
            0
        } else {
            LINE
        };
        self.tol2bus.send(ev.cmd, bytes, now);
        match ev.cmd {
            MemCmd::WritebackDirty => {
                if let Some(l2ev) = self.l2.fill(ev.addr, false, true) {
                    self.l2_eviction(l2ev, now);
                }
            }
            MemCmd::WritebackClean => {
                if let Some(l2ev) = self.l2.fill(ev.addr, false, false) {
                    self.l2_eviction(l2ev, now);
                }
            }
            _ => {} // CleanEvict: notification only
        }
    }

    /// Handles an L2 eviction packet: membus traffic plus a DRAM write for
    /// dirty data.
    fn l2_eviction(&mut self, ev: crate::cache::Eviction, now: u64) {
        let bytes = if ev.cmd == MemCmd::CleanEvict {
            0
        } else {
            LINE
        };
        self.membus.send(ev.cmd, bytes, now);
        if ev.cmd == MemCmd::WritebackDirty {
            self.mem_ctrl.write(ev.addr, LINE, now);
        }
    }

    /// The downstream path for an L1 miss: L2 access, then memory on an L2
    /// miss. Returns (latency-below-L1, outcome).
    fn below_l1(
        &mut self,
        l2cmd: MemCmd,
        addr: u64,
        now: u64,
        exclusive: bool,
    ) -> (u64, AccessOutcome) {
        let mut lat = self.tol2bus.send(l2cmd, 0, now);
        let l2res = self.l2.access(l2cmd, addr, now + lat);
        lat += l2res.latency;
        let outcome;
        if l2res.hit {
            outcome = AccessOutcome::L2Hit;
        } else if let Some(ready) = l2res.coalesced_ready_at {
            lat = lat.max(ready.saturating_sub(now));
            outcome = AccessOutcome::MshrCoalesced;
        } else {
            // L2 miss → memory.
            let memcmd = if exclusive {
                MemCmd::ReadExReq
            } else {
                MemCmd::ReadReq
            };
            let mut below = self.membus.send(memcmd, 0, now + lat);
            below += self.mem_ctrl.read(addr, LINE, now + lat + below);
            below += self.membus.send(MemCmd::ReadResp, LINE, now + lat + below);
            self.l2.complete_miss(l2cmd, addr, now + lat, below);
            if let Some(ev) = self.l2.fill(addr, exclusive, false) {
                self.l2_eviction(ev, now + lat + below);
            }
            lat += below + self.l2.config().response_latency;
            outcome = AccessOutcome::MemAccess;
        }
        // Response back up the L1↔L2 bus.
        lat += self.tol2bus.send(MemCmd::ReadResp, LINE, now + lat);
        (lat, outcome)
    }

    /// Performs a timed data load: returns latency, value and where it hit.
    pub fn load(&mut self, addr: u64, size: u64, now: u64) -> LoadResult {
        let value = self.memory.read(addr, size);
        let res = self.l1d.access(MemCmd::ReadReq, addr, now);
        if res.hit {
            return LoadResult {
                latency: res.latency,
                value,
                outcome: AccessOutcome::L1Hit,
            };
        }
        if let Some(ready) = res.coalesced_ready_at {
            return LoadResult {
                latency: res.latency.max(ready.saturating_sub(now)),
                value,
                outcome: AccessOutcome::MshrCoalesced,
            };
        }
        let (below, outcome) = self.below_l1(MemCmd::ReadSharedReq, addr, now + res.latency, false);
        let total = res.latency + below;
        self.l1d.complete_miss(MemCmd::ReadReq, addr, now, total);
        if let Some(ev) = self.l1d.fill(addr, false, false) {
            let wb_delay = self.l1d.reserve_write_buffer(now + total, 20);
            self.l1_eviction(ev, now + total + wb_delay);
        }
        LoadResult {
            latency: total,
            value,
            outcome,
        }
    }

    /// Performs a timed data store (write-allocate, write-back). The value
    /// is written through to the functional backing store.
    pub fn store(&mut self, addr: u64, size: u64, value: u64, now: u64) -> u64 {
        self.memory.write(addr, size, value);
        let res = self.l1d.access(MemCmd::WriteReq, addr, now);
        if res.hit {
            return res.latency;
        }
        if let Some(ready) = res.coalesced_ready_at {
            return res.latency.max(ready.saturating_sub(now));
        }
        let (below, _) = self.below_l1(MemCmd::ReadExReq, addr, now + res.latency, true);
        let total = res.latency + below;
        self.l1d.complete_miss(MemCmd::WriteReq, addr, now, total);
        if let Some(ev) = self.l1d.fill(addr, true, true) {
            let wb_delay = self.l1d.reserve_write_buffer(now + total, 20);
            self.l1_eviction(ev, now + total + wb_delay);
        }
        total
    }

    /// Performs a timed instruction fetch of the line containing `addr`.
    pub fn fetch(&mut self, addr: u64, now: u64) -> (u64, AccessOutcome) {
        let res = self.l1i.access(MemCmd::ReadCleanReq, addr, now);
        if res.hit {
            return (res.latency, AccessOutcome::L1Hit);
        }
        if let Some(ready) = res.coalesced_ready_at {
            return (
                res.latency.max(ready.saturating_sub(now)),
                AccessOutcome::MshrCoalesced,
            );
        }
        let (below, outcome) = self.below_l1(MemCmd::ReadCleanReq, addr, now + res.latency, false);
        let total = res.latency + below;
        self.l1i
            .complete_miss(MemCmd::ReadCleanReq, addr, now, total);
        if let Some(ev) = self.l1i.fill(addr, true, false) {
            self.l1_eviction(ev, now + total);
        }
        (total, outcome)
    }

    /// Flushes the line containing `addr` from the entire hierarchy
    /// (`clflush`). The latency depends on where (and how dirty) the line
    /// was — the timing signal Flush+Flush reads.
    pub fn flush_line(&mut self, addr: u64, now: u64) -> u64 {
        let mut lat = 10; // base cost of the flush micro-op
        let in_l1 = self.l1d.probe(addr).is_some() || self.l1i.probe(addr).is_some();
        let in_l2 = self.l2.probe(addr).is_some();

        if in_l1 || in_l2 {
            self.tol2bus.send(MemCmd::FlushReq, 0, now);
        }
        if let Some(ev) = self.l1d.invalidate(addr) {
            lat += 15;
            if ev.cmd == MemCmd::WritebackDirty {
                self.tol2bus.send(MemCmd::WritebackDirty, LINE, now + lat);
                self.membus.send(MemCmd::WritebackDirty, LINE, now + lat);
                lat += 10 + self.mem_ctrl.write(ev.addr, LINE, now + lat);
            }
        }
        if self.l1i.invalidate(addr).is_some() {
            lat += 10;
        }
        if in_l2 {
            self.membus.send(MemCmd::FlushReq, 0, now + lat);
        }
        if let Some(ev) = self.l2.invalidate(addr) {
            lat += 20;
            if ev.cmd == MemCmd::WritebackDirty {
                self.membus.send(MemCmd::WritebackDirty, LINE, now + lat);
                lat += 10 + self.mem_ctrl.write(ev.addr, LINE, now + lat);
            }
        }
        lat
    }

    /// Whether the line containing `addr` is resident in the L1 data cache.
    pub fn cached_in_l1d(&self, addr: u64) -> bool {
        self.l1d.probe(addr).is_some()
    }

    /// Applies CEASER-style index randomization to the data-side caches
    /// (the §IV-G1 mitigation a suspected cache attack triggers). Resident
    /// lines are invalidated by the remap.
    pub fn randomize_indexing(&mut self, key: u64) {
        self.l1d.set_index_key(key);
        self.l2.set_index_key(key.rotate_left(7));
    }
}

impl StatGroup for MemoryHierarchy {
    fn visit(&self, prefix: &str, v: &mut dyn StatVisitor) {
        let p = |s: &str| {
            if prefix.is_empty() {
                s.to_string()
            } else {
                format!("{prefix}.{s}")
            }
        };
        self.l1i.visit(&p("icache"), v);
        self.l1d.visit(&p("dcache"), v);
        self.l2.visit(&p("l2"), v);
        self.tol2bus.visit(&p("tol2bus"), v);
        self.membus.visit(&p("membus"), v);
        self.mem_ctrl.visit(&p("mem_ctrls"), v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_stats::Snapshot;

    #[test]
    fn load_miss_fills_all_levels() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default());
        h.memory_mut().write(0x4000, 8, 77);
        let r = h.load(0x4000, 8, 0);
        assert_eq!(r.outcome, AccessOutcome::MemAccess);
        assert_eq!(r.value, 77);
        assert!(h.cached_in_l1d(0x4000));
        assert!(h.l2().probe(0x4000).is_some());
        let r2 = h.load(0x4000, 8, r.latency + 1);
        assert_eq!(r2.outcome, AccessOutcome::L1Hit);
        assert!(r2.latency < r.latency);
    }

    #[test]
    fn flush_removes_line_everywhere_and_costs_more_when_resident() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default());
        h.load(0x4000, 8, 0);
        let lat_present = h.flush_line(0x4000, 100);
        assert!(!h.cached_in_l1d(0x4000));
        assert!(h.l2().probe(0x4000).is_none());
        let lat_absent = h.flush_line(0x4000, 200);
        assert!(
            lat_present > lat_absent,
            "flush of resident line ({lat_present}) must exceed absent ({lat_absent})"
        );
    }

    #[test]
    fn store_dirties_line_and_flush_writes_back() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default());
        h.store(0x9000, 8, 42, 0);
        let lat_dirty = h.flush_line(0x9000, 100);
        h.load(0x9000, 8, 200);
        let lat_clean = h.flush_line(0x9000, 500);
        assert!(lat_dirty > lat_clean, "dirty flush writes back");
        assert_eq!(h.memory().read(0x9000, 8), 42);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default());
        // L1D is 64KB 8-way = 128 sets. Fill 9 lines mapping to set 0 to
        // force one eviction; the victim should still hit in L2.
        let stride = 128 * 64; // one L1D set apart
        for i in 0..9u64 {
            h.load(0x10_0000 + i * stride, 8, i * 1000);
        }
        let r = h.load(0x10_0000, 8, 100_000);
        assert_eq!(r.outcome, AccessOutcome::L2Hit);
    }

    #[test]
    fn prime_like_sweep_emits_clean_evictions_on_tol2bus() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default());
        let stride = 128 * 64;
        for i in 0..64u64 {
            h.load(0x20_0000 + i * stride, 8, i * 500);
        }
        assert!(
            h.tol2bus().stats().trans_dist.get(MemCmd::CleanEvict) > 0,
            "L1 conflict evictions of clean lines must show up on the bus"
        );
    }

    #[test]
    fn fetch_uses_icache() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default());
        let (miss_lat, out) = h.fetch(0x100, 0);
        assert_eq!(out, AccessOutcome::MemAccess);
        let (hit_lat, out2) = h.fetch(0x104, miss_lat);
        assert_eq!(out2, AccessOutcome::L1Hit);
        assert!(hit_lat < miss_lat);
    }

    #[test]
    fn stats_tree_has_expected_names() {
        let h = MemoryHierarchy::new(HierarchyConfig::default());
        let snap = Snapshot::of(&h, "system");
        assert!(snap.get("system.dcache.ReadReq_misses").is_some());
        assert!(snap
            .get("system.l2.ReadSharedReq_mshr_miss_latency")
            .is_some());
        assert!(snap.get("system.tol2bus.trans_dist::CleanEvict").is_some());
        assert!(snap.get("system.mem_ctrls.selfRefreshEnergy").is_some());
        assert!(snap.get("system.mem_ctrls.bytesReadWrQ").is_some());
    }
}
