//! Typed construction errors for the memory hierarchy.
//!
//! Geometry problems (zero sets, zero MSHRs, a write buffer count that
//! could never satisfy [`Cache::reserve_write_buffer`]) are rejected here,
//! at construction, instead of surfacing later as panics on the access
//! path. `sim-cpu` folds these into its `SimError` layer so a bad
//! `HierarchyConfig` is reported like any other configuration mistake.
//!
//! [`Cache::reserve_write_buffer`]: crate::Cache::reserve_write_buffer

use std::fmt;

/// Why a memory-side component could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// A cache parameter is degenerate: the timing model's invariants
    /// (at least one set, way, MSHR, MSHR target and write buffer; a
    /// power-of-two line size) would not hold.
    InvalidGeometry {
        /// The offending parameter name.
        param: &'static str,
        /// The rejected value.
        value: usize,
        /// What the parameter must satisfy.
        reason: &'static str,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::InvalidGeometry {
                param,
                value,
                reason,
            } => write!(f, "invalid cache geometry: {param} = {value} ({reason})"),
        }
    }
}

impl std::error::Error for MemError {}
