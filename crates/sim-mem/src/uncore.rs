//! The shared uncore: everything below the private L1s.
//!
//! A single-core machine owns its uncore outright; a multi-core machine
//! wires every core's [`MemoryHierarchy`](crate::MemoryHierarchy) to one
//! shared [`Uncore`] behind an [`UncoreHandle`], so all cores contend on
//! the same L2, the
//! same L1↔L2 crossbar, the same memory bus and the same DRAM controller —
//! the physical substrate of cross-core Prime+Probe.
//!
//! Multi-core-only machinery (the shared-bus arbiter accounting and the
//! snoop back-invalidation queue) is armed only when the uncore is built
//! for more than one core: a single-core uncore records and publishes
//! exactly the statistics it always has, preserving the golden-snapshot
//! bit-identity guarantee.

use std::sync::{Arc, Mutex};

use uarch_stats::{StatGroup, StatVisitor};

use crate::bus::Bus;
use crate::cache::{Cache, Eviction};
use crate::cmd::MemCmd;
use crate::dram::MemCtrl;
use crate::error::MemError;
use crate::hierarchy::{AccessOutcome, HierarchyConfig};

const LINE: u64 = 64;

/// A line that left the shared L2 (eviction, flush) or was requested
/// exclusively by one core, and must be back-invalidated from the other
/// cores' private L1s by the machine's snoop drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingInvalidation {
    /// Line-aligned address of the affected line.
    pub line_addr: u64,
    /// The core whose request caused the invalidation (its own L1 is
    /// exempt from the snoop).
    pub src_core: usize,
}

/// Per-core shared-bus arbiter accounting: how many L1-miss requests each
/// core won the L1↔L2 crossbar for, and how many cycles it spent waiting
/// for the bus to free up. Published under `tol2bus.*` only on multi-core
/// machines (a single-core schema is pinned at 1159 statistics).
#[derive(Debug, Clone, Default)]
pub struct ArbiterStats {
    grants: Vec<u64>,
    wait_cycles: Vec<u64>,
}

impl ArbiterStats {
    fn new(n_cores: usize) -> Self {
        Self {
            grants: vec![0; n_cores],
            wait_cycles: vec![0; n_cores],
        }
    }

    /// Bus grants won by `core`.
    pub fn grants(&self, core: usize) -> u64 {
        self.grants.get(core).copied().unwrap_or(0)
    }

    /// Cycles `core` spent waiting for the bus.
    pub fn wait_cycles(&self, core: usize) -> u64 {
        self.wait_cycles.get(core).copied().unwrap_or(0)
    }
}

/// The shared memory system below the private L1s: L2, both crossbars and
/// the DRAM controller, plus the multi-core arbitration/snoop state.
#[derive(Debug)]
pub struct Uncore {
    pub(crate) l2: Cache,
    pub(crate) tol2bus: Bus,
    pub(crate) membus: Bus,
    pub(crate) mem_ctrl: MemCtrl,
    tol2bus_latency: u64,
    n_cores: usize,
    snoops_enabled: bool,
    pending_invalidations: Vec<PendingInvalidation>,
    arb: ArbiterStats,
}

impl Uncore {
    /// Builds an uncore for `n_cores` cores from the shared parts of a
    /// hierarchy configuration. Snooping and arbiter accounting arm only
    /// for `n_cores > 1`.
    pub fn try_new(cfg: &HierarchyConfig, n_cores: usize) -> Result<Self, MemError> {
        Ok(Self {
            l2: Cache::try_new(cfg.l2.clone())?,
            tol2bus: Bus::new(cfg.tol2bus_latency),
            membus: Bus::new(cfg.membus_latency),
            mem_ctrl: MemCtrl::new(cfg.dram.clone()),
            tol2bus_latency: cfg.tol2bus_latency,
            n_cores,
            snoops_enabled: n_cores > 1,
            pending_invalidations: Vec::new(),
            arb: ArbiterStats::new(n_cores),
        })
    }

    /// Number of cores sharing this uncore.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// The shared L2 cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The L1↔L2 crossbar.
    pub fn tol2bus(&self) -> &Bus {
        &self.tol2bus
    }

    /// The L2↔memory crossbar.
    pub fn membus(&self) -> &Bus {
        &self.membus
    }

    /// The DRAM controller.
    pub fn mem_ctrl(&self) -> &MemCtrl {
        &self.mem_ctrl
    }

    /// The shared-bus arbiter accounting.
    pub fn arbiter(&self) -> &ArbiterStats {
        &self.arb
    }

    /// Drains the queued snoop back-invalidations (lines that left the
    /// shared L2 or were requested exclusively). The machine applies each
    /// entry to every *other* core's private L1s.
    pub fn take_pending_invalidations(&mut self) -> Vec<PendingInvalidation> {
        std::mem::take(&mut self.pending_invalidations)
    }

    /// Records `n` delivered snoop invalidations on the L1↔L2 crossbar's
    /// snoop filter (the previously always-zero `tot_snoops` counter).
    pub fn record_snoops(&mut self, n: u64) {
        self.tol2bus.record_snoops(n);
    }

    /// Queues a back-invalidation for a line that left the shared L2 (by
    /// eviction or flush) or was requested exclusively. No-op on
    /// single-core uncores, preserving golden bit-identity.
    pub(crate) fn l2_eviction_snoop(&mut self, addr: u64, src_core: usize) {
        if self.snoops_enabled {
            self.pending_invalidations.push(PendingInvalidation {
                line_addr: addr & !(LINE - 1),
                src_core,
            });
        }
    }

    /// Handles an L1 eviction packet: puts it on the L1↔L2 bus and applies
    /// it to the L2.
    pub(crate) fn l1_eviction(&mut self, ev: Eviction, now: u64, src_core: usize) {
        let bytes = if ev.cmd == MemCmd::CleanEvict {
            0
        } else {
            LINE
        };
        self.tol2bus.send(ev.cmd, bytes, now);
        match ev.cmd {
            MemCmd::WritebackDirty => {
                if let Some(l2ev) = self.l2.fill(ev.addr, false, true) {
                    self.l2_eviction(l2ev, now, src_core);
                }
            }
            MemCmd::WritebackClean => {
                if let Some(l2ev) = self.l2.fill(ev.addr, false, false) {
                    self.l2_eviction(l2ev, now, src_core);
                }
            }
            _ => {} // CleanEvict: notification only
        }
    }

    /// Handles an L2 eviction packet: membus traffic plus a DRAM write for
    /// dirty data. On multi-core machines the displaced line is queued for
    /// back-invalidation from the other cores' L1s.
    pub(crate) fn l2_eviction(&mut self, ev: Eviction, now: u64, src_core: usize) {
        let bytes = if ev.cmd == MemCmd::CleanEvict {
            0
        } else {
            LINE
        };
        self.membus.send(ev.cmd, bytes, now);
        if ev.cmd == MemCmd::WritebackDirty {
            self.mem_ctrl.write(ev.addr, LINE, now);
        }
        self.l2_eviction_snoop(ev.addr, src_core);
    }

    /// The downstream path for an L1 miss: L2 access, then memory on an L2
    /// miss. Returns (latency-below-L1, outcome).
    pub(crate) fn below_l1(
        &mut self,
        l2cmd: MemCmd,
        addr: u64,
        now: u64,
        exclusive: bool,
        src_core: usize,
    ) -> (u64, AccessOutcome) {
        let mut lat = self.tol2bus.send(l2cmd, 0, now);
        if let Some(g) = self.arb.grants.get_mut(src_core) {
            *g += 1;
            self.arb.wait_cycles[src_core] += lat.saturating_sub(self.tol2bus_latency);
        }
        if exclusive {
            self.l2_eviction_snoop(addr, src_core);
        }
        let l2res = self.l2.access(l2cmd, addr, now + lat);
        lat += l2res.latency;
        let outcome;
        if l2res.hit {
            outcome = AccessOutcome::L2Hit;
        } else if let Some(ready) = l2res.coalesced_ready_at {
            lat = lat.max(ready.saturating_sub(now));
            outcome = AccessOutcome::MshrCoalesced;
        } else {
            // L2 miss → memory.
            let memcmd = if exclusive {
                MemCmd::ReadExReq
            } else {
                MemCmd::ReadReq
            };
            let mut below = self.membus.send(memcmd, 0, now + lat);
            below += self.mem_ctrl.read(addr, LINE, now + lat + below);
            below += self.membus.send(MemCmd::ReadResp, LINE, now + lat + below);
            self.l2.complete_miss(l2cmd, addr, now + lat, below);
            if let Some(ev) = self.l2.fill(addr, exclusive, false) {
                self.l2_eviction(ev, now + lat + below, src_core);
            }
            lat += below + self.l2.config().response_latency;
            outcome = AccessOutcome::MemAccess;
        }
        // Response back up the L1↔L2 bus.
        lat += self.tol2bus.send(MemCmd::ReadResp, LINE, now + lat);
        (lat, outcome)
    }

    /// Walks the uncore's statistic groups in the canonical order
    /// (`l2`, `tol2bus`, `membus`, `mem_ctrls`). The arbiter counters are
    /// appended under `tol2bus` only on multi-core uncores, keeping the
    /// single-core schema pinned at 1159 names.
    pub fn visit_stats(&self, prefix: &str, v: &mut dyn StatVisitor) {
        let p = |s: &str| {
            if prefix.is_empty() {
                s.to_string()
            } else {
                format!("{prefix}.{s}")
            }
        };
        self.l2.visit(&p("l2"), v);
        self.tol2bus.visit(&p("tol2bus"), v);
        if self.n_cores > 1 {
            let bus = p("tol2bus");
            for (i, g) in self.arb.grants.iter().enumerate() {
                v.scalar(&bus, &format!("arbGrants::core{i}"), *g as f64);
            }
            for (i, w) in self.arb.wait_cycles.iter().enumerate() {
                v.scalar(&bus, &format!("arbWaitCycles::core{i}"), *w as f64);
            }
        }
        self.membus.visit(&p("membus"), v);
        self.mem_ctrl.visit(&p("mem_ctrls"), v);
    }
}

/// How a [`MemoryHierarchy`](crate::MemoryHierarchy) reaches its uncore:
/// owned outright (single standalone core — the historical layout, no
/// locking) or shared with the other cores of a machine.
#[derive(Debug)]
pub enum UncoreHandle {
    /// The hierarchy owns the uncore (standalone single core).
    Owned(Box<Uncore>),
    /// The uncore is shared between the cores of a machine. Cores tick
    /// sequentially, so the mutex is never contended; it exists to keep
    /// the hierarchy `Send` for parallel corpus collection.
    Shared(Arc<Mutex<Uncore>>),
}

impl UncoreHandle {
    /// Runs `f` with mutable access to the uncore.
    #[inline]
    pub fn with<R>(&mut self, f: impl FnOnce(&mut Uncore) -> R) -> R {
        match self {
            UncoreHandle::Owned(u) => f(u),
            UncoreHandle::Shared(a) => f(&mut a.lock().expect("uncore lock poisoned")),
        }
    }

    /// Runs `f` with shared access to the uncore.
    #[inline]
    pub fn with_ref<R>(&self, f: impl FnOnce(&Uncore) -> R) -> R {
        match self {
            UncoreHandle::Owned(u) => f(u),
            UncoreHandle::Shared(a) => f(&a.lock().expect("uncore lock poisoned")),
        }
    }

    /// Whether this handle owns its uncore (single standalone core).
    pub fn is_owned(&self) -> bool {
        matches!(self, UncoreHandle::Owned(_))
    }
}
