#!/bin/bash
# Regenerates every table and figure of the paper into experiments/.
set -u
cd "$(dirname "$0")"
BIN=target/release
mkdir -p experiments
for exp in table2_architecture stat_census table3_cv_folds fig1_information_hops \
           table1_correlation_groups fig3_polymorphic fig4_bandwidth fig5_roc \
           table4_model_comparison feature_weights ablation mitigation_demo \
           resilience_sweep; do
  echo "=== $exp ==="
  $BIN/$exp > experiments/$exp.txt 2>&1
  echo "    -> experiments/$exp.txt ($?)"
done
